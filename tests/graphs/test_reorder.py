"""Ordering registry: every ordering is a valid, deterministic,
metric-preserving permutation — and the locality ones actually help.
"""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.graphs import generators
from repro.graphs.reorder import (
    ORDERINGS,
    available_orderings,
    bfs_order,
    compute_ordering,
    degree_order,
    inverse_permutation,
    mean_neighbor_gap,
    natural_order,
    rcm_order,
    register_ordering,
    reorder_graph,
)
from repro.graphs.weights import random_integer_weights

from tests.helpers import random_connected_graph

BUILTIN = ("natural", "random", "degree", "bfs", "rcm")


@pytest.fixture(scope="module")
def road():
    g, _ = generators.road_network(300, seed=7)
    return random_integer_weights(g, low=1, high=40, seed=8)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN) <= set(available_orderings())

    def test_unknown_ordering_lists_known(self):
        g = random_connected_graph(10, 20, seed=0)
        with pytest.raises(ValueError, match="rcm"):
            compute_ordering(g, "zorder")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_ordering("rcm", rcm_order)

    def test_plugin_ordering_usable(self):
        name = "test-reversed"
        register_ordering(
            name,
            lambda g, seed: np.arange(g.n - 1, -1, -1, dtype=np.int64),
            description="test plugin",
            overwrite=True,
        )
        try:
            g = random_connected_graph(12, 24, seed=3)
            res = reorder_graph(g, name)
            assert np.array_equal(res.perm, np.arange(g.n - 1, -1, -1))
        finally:
            del ORDERINGS[name]

    def test_invalid_plugin_permutation_caught(self):
        name = "test-broken"
        register_ordering(
            name, lambda g, seed: np.zeros(g.n, dtype=np.int64), overwrite=True
        )
        try:
            g = random_connected_graph(8, 16, seed=4)
            with pytest.raises(ValueError, match="invalid permutation"):
                compute_ordering(g, name)
        finally:
            del ORDERINGS[name]


class TestOrderingProperties:
    @pytest.mark.parametrize("method", BUILTIN)
    def test_valid_permutation(self, road, method):
        perm = compute_ordering(road, method)
        assert perm.shape == (road.n,)
        assert np.array_equal(np.sort(perm), np.arange(road.n))

    @pytest.mark.parametrize("method", BUILTIN)
    def test_deterministic(self, road, method):
        a = compute_ordering(road, method, seed=5)
        b = compute_ordering(road, method, seed=5)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("method", BUILTIN)
    def test_metric_preserved(self, road, method):
        """Relabeling never changes a single distance."""
        res = reorder_graph(road, method)
        ref = dijkstra(road, 0).dist
        got = dijkstra(res.graph, int(res.perm[0])).dist[res.perm]
        assert np.array_equal(got, ref)

    def test_natural_is_identity(self, road):
        res = reorder_graph(road, "natural")
        assert res.identity
        assert res.graph == road

    def test_random_seeded(self, road):
        a = compute_ordering(road, "random", seed=1)
        b = compute_ordering(road, "random", seed=2)
        assert not np.array_equal(a, b)

    def test_degree_packs_hubs_first(self):
        g = generators.power_law(200, seed=9)[0] if hasattr(
            generators, "power_law"
        ) else random_connected_graph(200, 600, seed=9, weighted=False)
        perm = degree_order(g)
        inv = inverse_permutation(perm)
        deg_in_new_order = g.degrees()[inv]
        assert np.all(np.diff(deg_in_new_order) <= 0)

    def test_bfs_root_gets_id_zero(self, road):
        perm = bfs_order(road)
        root = int(np.flatnonzero(perm == 0)[0])
        degs = road.degrees()
        assert degs[root] == degs.min()

    def test_inverse_permutation(self):
        perm = np.array([2, 0, 3, 1])
        inv = inverse_permutation(perm)
        assert np.array_equal(inv[perm], np.arange(4))
        assert np.array_equal(perm[inv], np.arange(4))


class TestLocality:
    def test_gap_zero_on_edgeless(self):
        from repro.graphs.build import from_edge_list

        g = from_edge_list(3, [])
        assert mean_neighbor_gap(g) == 0.0

    def test_path_graph_gap_is_one(self):
        g = generators.path_graph(50)
        assert mean_neighbor_gap(g) == 1.0

    def test_bfs_and_rcm_beat_random_on_road(self, road):
        gaps = {
            m: mean_neighbor_gap(reorder_graph(road, m).graph)
            for m in ("random", "bfs", "rcm")
        }
        assert gaps["bfs"] < gaps["random"]
        assert gaps["rcm"] < gaps["random"]

    def test_rcm_recovers_scrambled_path(self):
        """RCM on a scrambled path graph restores near-unit bandwidth."""
        g = generators.path_graph(120)
        scrambled = reorder_graph(g, "random", seed=3).graph
        assert mean_neighbor_gap(scrambled) > 10
        recovered = reorder_graph(scrambled, "rcm").graph
        assert mean_neighbor_gap(recovered) == 1.0


class TestDirectedInputs:
    def test_bfs_handles_asymmetric_reachability(self):
        """bfs/rcm symmetrize first, so a vertex only reachable *via*
        incoming arcs still gets numbered (no unvisited hole)."""
        from repro.graphs.build import from_arc_arrays

        # star digraph: arcs only point 0 -> i
        n = 6
        tails = np.zeros(n - 1, dtype=np.int64)
        heads = np.arange(1, n, dtype=np.int64)
        g = from_arc_arrays(
            n, tails, heads, np.ones(n - 1), symmetrize=False, validate=False
        )
        for fn in (bfs_order, rcm_order):
            perm = fn(g)
            assert np.array_equal(np.sort(perm), np.arange(n))


class TestDisconnected:
    def test_components_each_numbered(self):
        from repro.graphs.build import from_edge_list

        # two disjoint triangles
        edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
                 (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0)]
        g = from_edge_list(6, edges)
        for method in ("bfs", "rcm"):
            perm = compute_ordering(g, method)
            assert np.array_equal(np.sort(perm), np.arange(6))
