"""Equivariance/invariance properties via graph transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bellman_ford, dijkstra, radius_stepping
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.transform import (
    permute_vertices,
    random_permutation,
    reverse_graph,
    scale_weights,
    to_bidirected,
)

from tests.helpers import random_connected_graph


class TestPermute:
    def test_preserves_sizes_and_degrees(self):
        g = random_connected_graph(30, 70, seed=0)
        perm = random_permutation(g.n, seed=1)
        h = permute_vertices(g, perm)
        assert (h.n, h.m) == (g.n, g.m)
        assert np.array_equal(h.degrees()[perm], g.degrees())

    def test_identity(self):
        g = grid_2d(4, 5)
        h = permute_vertices(g, np.arange(g.n))
        assert h == g

    def test_edges_relabeled(self):
        g = path_graph(4)
        perm = np.array([3, 1, 0, 2])
        h = permute_vertices(g, perm)
        for u, v, w in g.iter_edges():
            assert h.has_edge(int(perm[u]), int(perm[v]))
            assert h.edge_weight(int(perm[u]), int(perm[v])) == w

    def test_rejects_non_permutation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            permute_vertices(g, np.array([0, 0, 2]))
        with pytest.raises(ValueError):
            permute_vertices(g, np.array([0, 1]))

    @given(seed=st.integers(0, 10**4), pseed=st.integers(0, 10**4))
    @settings(max_examples=20, deadline=None)
    def test_solver_equivariance(self, seed, pseed):
        """d_new(perm[s], perm[v]) == d_old(s, v) for every solver."""
        g = random_connected_graph(20, 45, seed=seed, weight_high=9)
        perm = random_permutation(g.n, seed=pseed)
        h = permute_vertices(g, perm)
        s = 0
        ref = dijkstra(g, s).dist
        inv = np.empty_like(perm)
        inv[perm] = np.arange(g.n)
        assert np.allclose(dijkstra(h, int(perm[s])).dist[perm], ref)
        assert np.allclose(bellman_ford(h, int(perm[s])).dist[perm], ref)
        rng = np.random.default_rng(seed)
        radii = rng.uniform(0, 5, g.n)
        assert np.allclose(
            radius_stepping(h, int(perm[s]), radii[inv]).dist[perm], ref
        )


class TestPermuteDeterministicRows:
    def test_rows_sorted_by_new_head_id(self):
        """Within each relabeled row, arcs are sorted ascending by new
        head id — the canonical order every CSR builder produces — so a
        permuted graph is bit-identical to one rebuilt from scratch."""
        g = random_connected_graph(40, 90, seed=11)
        perm = random_permutation(g.n, seed=12)
        h = permute_vertices(g, perm)
        for v in range(h.n):
            row = h.indices[h.indptr[v] : h.indptr[v + 1]]
            assert np.all(np.diff(row) >= 0), f"row {v} not head-sorted"

    def test_round_trip_bit_identical(self):
        """permute then un-permute restores the exact original arrays —
        only true when the row order is canonical, not heap order."""
        g = random_connected_graph(35, 80, seed=13)
        perm = random_permutation(g.n, seed=14)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(g.n)
        back = permute_vertices(permute_vertices(g, perm), inv)
        assert np.array_equal(back.indptr, g.indptr)
        assert np.array_equal(back.indices, g.indices)
        assert np.array_equal(back.weights, g.weights)

    def test_content_hash_stable_across_equivalent_perms(self):
        """Two routes to the same numbering give the same content hash."""
        g = random_connected_graph(25, 55, seed=15)
        perm = random_permutation(g.n, seed=16)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(g.n)
        h1 = permute_vertices(g, perm)
        h2 = permute_vertices(permute_vertices(h1, inv), perm)
        assert h1.content_hash() == h2.content_hash()


class TestReverseGraph:
    def test_symmetric_graph_fixed_point(self):
        """Our builders store undirected graphs symmetrically, so
        reversal is the identity on them."""
        g = random_connected_graph(30, 70, seed=20)
        assert reverse_graph(g) == g

    def test_directed_arcs_flip(self):
        from repro.graphs.build import from_arc_arrays

        tails = np.array([0, 0, 1, 2], dtype=np.int64)
        heads = np.array([1, 2, 2, 3], dtype=np.int64)
        w = np.array([1.0, 2.0, 3.0, 4.0])
        g = from_arc_arrays(4, tails, heads, w, symmetrize=False, validate=False)
        r = reverse_graph(g)
        assert (r.n, r.num_arcs) == (g.n, g.num_arcs)
        for t, h, wt in zip(tails, heads, w):
            assert r.edge_weight(int(h), int(t)) == wt

    def test_involution(self):
        from repro.graphs.build import from_arc_arrays

        rng = np.random.default_rng(21)
        tails = rng.integers(0, 12, 40).astype(np.int64)
        heads = (tails + rng.integers(1, 11, 40)) % 12
        w = rng.uniform(0.1, 5.0, 40)
        g = from_arc_arrays(12, tails, heads, w, symmetrize=False, validate=False)
        rr = reverse_graph(reverse_graph(g))
        assert np.array_equal(rr.indptr, g.indptr)
        assert np.array_equal(rr.indices, g.indices)
        assert np.array_equal(rr.weights, g.weights)


class TestToBidirected:
    def test_symmetric_graph_unchanged(self):
        g = random_connected_graph(30, 70, seed=22)
        assert to_bidirected(g) == g

    def test_directed_arc_becomes_edge(self):
        from repro.graphs.build import from_arc_arrays

        g = from_arc_arrays(
            3,
            np.array([0, 1], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
            np.array([5.0, 7.0]),
            symmetrize=False,
            validate=False,
        )
        b = to_bidirected(g)
        assert b.has_edge(1, 0) and b.has_edge(2, 1)
        assert b.edge_weight(1, 0) == 5.0

    def test_antiparallel_pair_keeps_min_weight(self):
        from repro.graphs.build import from_arc_arrays

        g = from_arc_arrays(
            2,
            np.array([0, 1], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([9.0, 2.0]),
            symmetrize=False,
            validate=False,
        )
        b = to_bidirected(g)
        assert b.edge_weight(0, 1) == 2.0
        assert b.edge_weight(1, 0) == 2.0


class TestScaleWeights:
    def test_distances_scale(self):
        g = random_connected_graph(25, 60, seed=2)
        ref = dijkstra(g, 0).dist
        h = scale_weights(g, 3.5)
        assert np.allclose(dijkstra(h, 0).dist, 3.5 * ref)

    def test_steps_invariant_when_radii_scale(self):
        """Scaling weights and radii together leaves the d_i sequence —
        hence the step count — unchanged."""
        g = random_connected_graph(25, 60, seed=3, weight_high=20)
        rng = np.random.default_rng(3)
        radii = rng.uniform(0, 10, g.n)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping(scale_weights(g, 7.0), 0, radii * 7.0)
        assert a.steps == b.steps
        assert np.allclose(b.dist, 7.0 * a.dist)

    def test_rejects_bad_factor(self):
        g = path_graph(3)
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                scale_weights(g, bad)

    def test_rejects_negative_and_nan_regression(self):
        """Regression: a negative factor must never flip the metric and
        NaN must never poison the weights — both raise, nothing is
        returned."""
        g = random_connected_graph(10, 20, seed=4)
        with pytest.raises(ValueError, match="positive and finite"):
            scale_weights(g, -2.5)
        with pytest.raises(ValueError, match="positive and finite"):
            scale_weights(g, np.nan)
        # the input graph was not mutated by the failed calls
        assert np.all(g.weights > 0)

    def test_rejects_bool_factor(self):
        """bool is an int subclass: True would silently scale by 1."""
        g = path_graph(3)
        with pytest.raises(TypeError, match="bool"):
            scale_weights(g, True)
        with pytest.raises(TypeError, match="bool"):
            scale_weights(g, np.True_)

    def test_rejects_array_factor(self):
        """A per-edge array factor would desynchronize weights from the
        arc list; only real scalars are accepted."""
        g = path_graph(3)
        with pytest.raises(TypeError):
            scale_weights(g, np.array([1.0, 2.0]))
        with pytest.raises(TypeError):
            scale_weights(g, [2.0])
        # 0-d / shape-(1,) arrays are genuine scalars — accepted
        assert scale_weights(g, np.float64(2.0)).edge_weight(0, 1) == 2.0
