"""Equivariance/invariance properties via graph transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bellman_ford, dijkstra, radius_stepping
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.transform import (
    permute_vertices,
    random_permutation,
    scale_weights,
)

from tests.helpers import random_connected_graph


class TestPermute:
    def test_preserves_sizes_and_degrees(self):
        g = random_connected_graph(30, 70, seed=0)
        perm = random_permutation(g.n, seed=1)
        h = permute_vertices(g, perm)
        assert (h.n, h.m) == (g.n, g.m)
        assert np.array_equal(h.degrees()[perm], g.degrees())

    def test_identity(self):
        g = grid_2d(4, 5)
        h = permute_vertices(g, np.arange(g.n))
        assert h == g

    def test_edges_relabeled(self):
        g = path_graph(4)
        perm = np.array([3, 1, 0, 2])
        h = permute_vertices(g, perm)
        for u, v, w in g.iter_edges():
            assert h.has_edge(int(perm[u]), int(perm[v]))
            assert h.edge_weight(int(perm[u]), int(perm[v])) == w

    def test_rejects_non_permutation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            permute_vertices(g, np.array([0, 0, 2]))
        with pytest.raises(ValueError):
            permute_vertices(g, np.array([0, 1]))

    @given(seed=st.integers(0, 10**4), pseed=st.integers(0, 10**4))
    @settings(max_examples=20, deadline=None)
    def test_solver_equivariance(self, seed, pseed):
        """d_new(perm[s], perm[v]) == d_old(s, v) for every solver."""
        g = random_connected_graph(20, 45, seed=seed, weight_high=9)
        perm = random_permutation(g.n, seed=pseed)
        h = permute_vertices(g, perm)
        s = 0
        ref = dijkstra(g, s).dist
        inv = np.empty_like(perm)
        inv[perm] = np.arange(g.n)
        assert np.allclose(dijkstra(h, int(perm[s])).dist[perm], ref)
        assert np.allclose(bellman_ford(h, int(perm[s])).dist[perm], ref)
        rng = np.random.default_rng(seed)
        radii = rng.uniform(0, 5, g.n)
        assert np.allclose(
            radius_stepping(h, int(perm[s]), radii[inv]).dist[perm], ref
        )


class TestScaleWeights:
    def test_distances_scale(self):
        g = random_connected_graph(25, 60, seed=2)
        ref = dijkstra(g, 0).dist
        h = scale_weights(g, 3.5)
        assert np.allclose(dijkstra(h, 0).dist, 3.5 * ref)

    def test_steps_invariant_when_radii_scale(self):
        """Scaling weights and radii together leaves the d_i sequence —
        hence the step count — unchanged."""
        g = random_connected_graph(25, 60, seed=3, weight_high=20)
        rng = np.random.default_rng(3)
        radii = rng.uniform(0, 10, g.n)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping(scale_weights(g, 7.0), 0, radii * 7.0)
        assert a.steps == b.steps
        assert np.allclose(b.dist, 7.0 * a.dist)

    def test_rejects_bad_factor(self):
        g = path_graph(3)
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                scale_weights(g, bad)
