"""Unit tests for structural validation and weight normalization."""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    GraphValidationError,
    check_min_weight_normalized,
    from_edge_list,
    normalize_weights,
    validate_graph,
)
from repro.graphs.validate import validate_csr_arrays


def _arrays(indptr, indices, weights):
    return (
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


class TestValidateCsrArrays:
    def test_valid_passes(self):
        validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [1.0, 1.0]))

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(GraphValidationError, match="indptr\\[0\\]"):
            validate_csr_arrays(*_arrays([1, 2], [0], [1.0]))

    def test_indptr_decreasing(self):
        with pytest.raises(GraphValidationError, match="non-decreasing"):
            validate_csr_arrays(*_arrays([0, 2, 1], [0, 1, 0], [1.0, 1.0, 1.0]))

    def test_indptr_tail_mismatch(self):
        with pytest.raises(GraphValidationError, match="len\\(indices\\)"):
            validate_csr_arrays(*_arrays([0, 1, 3], [1, 0], [1.0, 1.0]))

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphValidationError, match="equal length"):
            validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [1.0]))

    def test_head_out_of_range(self):
        with pytest.raises(GraphValidationError, match="out of range"):
            validate_csr_arrays(*_arrays([0, 1, 2], [5, 0], [1.0, 1.0]))

    def test_negative_weight(self):
        with pytest.raises(GraphValidationError, match="non-negative"):
            validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [-1.0, -1.0]))

    def test_nan_weight(self):
        with pytest.raises(GraphValidationError, match="finite"):
            validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [np.nan, np.nan]))

    def test_inf_weight(self):
        with pytest.raises(GraphValidationError, match="finite"):
            validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [np.inf, np.inf]))

    def test_self_loop(self):
        with pytest.raises(GraphValidationError, match="self loops"):
            validate_csr_arrays(*_arrays([0, 1], [0], [1.0]))

    def test_asymmetric_arcs(self):
        with pytest.raises(GraphValidationError, match="symmetric"):
            validate_csr_arrays(*_arrays([0, 1, 1], [1], [1.0]))

    def test_asymmetric_weights(self):
        with pytest.raises(GraphValidationError, match="symmetric"):
            validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [1.0, 2.0]))

    def test_parallel_edges(self):
        with pytest.raises(GraphValidationError, match="parallel"):
            validate_csr_arrays(
                *_arrays([0, 2, 4], [1, 1, 0, 0], [1.0, 1.0, 1.0, 1.0])
            )

    def test_zero_weight_edge_allowed(self):
        validate_csr_arrays(*_arrays([0, 1, 2], [1, 0], [0.0, 0.0]))


class TestValidateGraph:
    def test_constructed_graph_validates(self):
        validate_graph(from_edge_list(3, [(0, 1), (1, 2)]))

    def test_construction_runs_validation(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(
                np.array([0, 1]), np.array([0]), np.array([1.0]), validate=True
            )


class TestNormalization:
    def test_already_normalized(self):
        g = from_edge_list(2, [(0, 1, 1.0)])
        assert check_min_weight_normalized(g)
        assert normalize_weights(g) is g

    def test_rescale(self):
        g = from_edge_list(3, [(0, 1, 2.0), (1, 2, 5.0)])
        assert not check_min_weight_normalized(g)
        g2 = normalize_weights(g)
        assert check_min_weight_normalized(g2)
        assert g2.edge_weight(1, 2) == 2.5

    def test_edgeless_is_normalized(self):
        assert check_min_weight_normalized(from_edge_list(2, []))

    def test_zero_weights_preserved(self):
        g = from_edge_list(3, [(0, 1, 0.0), (1, 2, 4.0)])
        g2 = normalize_weights(g)
        assert g2.edge_weight(0, 1) == 0.0
        assert g2.edge_weight(1, 2) == 1.0
