"""Unit tests for edge-weight models."""

import numpy as np
import pytest

from repro.graphs import (
    euclidean_weights,
    random_integer_weights,
    uniform_weights,
    unit_weights,
    validate_graph,
)
from repro.graphs.generators import grid_2d, road_network


@pytest.fixture
def grid():
    return grid_2d(6, 6)


class TestUnitWeights:
    def test_all_ones(self, grid):
        g = unit_weights(random_integer_weights(grid, seed=1))
        assert g.is_unweighted


class TestRandomIntegerWeights:
    def test_paper_range_default(self, grid):
        g = random_integer_weights(grid, seed=0)
        assert g.weights.min() >= 1
        assert g.weights.max() <= 10_000
        assert np.all(g.weights == np.round(g.weights))

    def test_symmetric_per_edge(self, grid):
        g = random_integer_weights(grid, seed=3)
        validate_graph(g)  # symmetry check built in
        for u, v, w in list(g.iter_edges())[:10]:
            assert g.edge_weight(v, u) == w

    def test_deterministic(self, grid):
        a = random_integer_weights(grid, seed=7)
        b = random_integer_weights(grid, seed=7)
        assert np.array_equal(a.weights, b.weights)

    def test_seed_changes_weights(self, grid):
        a = random_integer_weights(grid, seed=1)
        b = random_integer_weights(grid, seed=2)
        assert not np.array_equal(a.weights, b.weights)

    def test_invalid_range(self, grid):
        with pytest.raises(ValueError):
            random_integer_weights(grid, low=0, high=5)
        with pytest.raises(ValueError):
            random_integer_weights(grid, low=10, high=5)

    def test_weights_independent_per_edge(self, grid):
        g = random_integer_weights(grid, low=1, high=10**6, seed=5)
        us, vs, ws = g.edge_array()
        assert len(np.unique(ws)) > len(ws) * 0.9  # near-distinct


class TestUniformWeights:
    def test_range(self, grid):
        g = uniform_weights(grid, low=1.0, high=2.0, seed=0)
        assert g.weights.min() >= 1.0
        assert g.weights.max() <= 2.0
        validate_graph(g)

    def test_invalid_range(self, grid):
        with pytest.raises(ValueError):
            uniform_weights(grid, low=3.0, high=1.0)


class TestEuclideanWeights:
    def test_matches_geometry(self):
        g, pts = road_network(64, seed=2)
        gw = euclidean_weights(g, pts, normalize=False)
        us, vs, ws = gw.edge_array()
        expect = np.linalg.norm(pts[us] - pts[vs], axis=1)
        assert np.allclose(ws, expect)

    def test_normalized_min_is_one(self):
        g, pts = road_network(64, seed=2)
        gw = euclidean_weights(g, pts)
        assert np.isclose(gw.weights.min(), 1.0)
        validate_graph(gw)

    def test_shape_mismatch(self):
        g, pts = road_network(64, seed=2)
        with pytest.raises(ValueError):
            euclidean_weights(g, pts[:-1])
