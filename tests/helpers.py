"""Shared test helpers: graph factories and SSSP cross-checks."""

from __future__ import annotations

import numpy as np

from repro.core.dijkstra import dijkstra
from repro.graphs.build import from_arc_arrays, largest_connected_component
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import random_integer_weights, uniform_weights

__all__ = [
    "random_connected_graph",
    "assert_distances_match",
    "assert_valid_parents",
    "brute_force_distances",
]


def random_connected_graph(
    n: int,
    m: int | None = None,
    *,
    seed: int = 0,
    weighted: bool = True,
    weight_high: int = 50,
) -> CSRGraph:
    """Seeded connected random graph, optionally with integer weights."""
    m = m if m is not None else 2 * n
    g = erdos_renyi(n, m, seed=seed, connect=True)
    if weighted:
        g = random_integer_weights(g, low=1, high=weight_high, seed=seed + 1)
    return g


def brute_force_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """O(n·m) Bellman–Ford reference, independent of the library solvers."""
    n = graph.n
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    tails = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    for _ in range(n):
        cand = dist[tails] + graph.weights
        new = dist.copy()
        np.minimum.at(new, graph.indices, cand)
        if np.array_equal(
            new, dist, equal_nan=False
        ) or np.allclose(new, dist, equal_nan=True):
            break
        dist = new
    return dist


def assert_distances_match(result_dist: np.ndarray, graph: CSRGraph, source: int) -> None:
    """Compare a solver's distances to Dijkstra's."""
    ref = dijkstra(graph, source).dist
    assert np.allclose(result_dist, ref, equal_nan=True), (
        f"distance mismatch from source {source}: "
        f"max err {np.nanmax(np.abs(np.where(np.isfinite(ref), result_dist - ref, 0)))}"
    )


def assert_valid_parents(graph: CSRGraph, dist: np.ndarray, parent: np.ndarray, source: int) -> None:
    """Every parent pointer must realize the vertex's exact distance."""
    for v in range(graph.n):
        p = parent[v]
        if v == source:
            assert p == -1
            continue
        if not np.isfinite(dist[v]):
            assert p == -1
            continue
        assert p >= 0, f"reachable vertex {v} lacks a parent"
        w = graph.edge_weight(int(p), v)
        assert np.isclose(dist[p] + w, dist[v]), (
            f"parent edge ({p}->{v}) does not realize dist"
        )
