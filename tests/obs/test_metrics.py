"""Metrics registry: exactness under threads, exposition round-trips.

The registry's contract is *exact* accounting — counters are locked,
not sampled, so under an 8-thread hammer the totals must balance to the
increment (no lost updates), histograms must keep
``sum(bucket_counts) == count``, and a scrape must parse back through
the minimal Prometheus parser with every series intact.
"""

import threading

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    EngineTelemetry,
    MetricsRegistry,
    exponential_buckets,
    get_default_registry,
)
from repro.obs.expo import CONTENT_TYPE, parse, render

N_THREADS = 8
REPS = 400


class TestPrimitives:
    def test_counter_exact_and_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "help")
        c.inc()
        c.inc(2.5)
        assert c._solo().value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)
        assert c._solo().value == 3.5

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "help")
        g.set(10)
        g.inc(4)
        g.dec(1)
        assert g._solo().value == 13.0

    def test_histogram_bucketing_invariant(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "help", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        counts, total, count = h._solo().snapshot()
        # bisect_left: a value equal to a bound lands in that bound's bucket
        assert counts == [2, 1, 1, 1]
        assert count == 5 == sum(counts)
        assert total == pytest.approx(106.0)

    def test_exponential_buckets_shape_and_validation(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        for bad in ((0.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)):
            with pytest.raises(ValueError):
                exponential_buckets(*bad)
        assert len(LATENCY_BUCKETS) == 18
        assert len(COUNT_BUCKETS) == 12

    def test_labels_get_or_create_and_arity_check(self):
        reg = MetricsRegistry()
        fam = reg.counter("req_total", "help", labelnames=("endpoint",))
        a = fam.labels("route")
        assert fam.labels("route") is a  # same child, not a new series
        with pytest.raises(ValueError):
            fam.labels("route", "extra")

    def test_registry_get_or_create_and_kind_conflict(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", "help")
        assert reg.counter("x_total") is c1
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("9bad")

    def test_default_registry_is_process_global(self):
        assert get_default_registry() is get_default_registry()


class TestConcurrency:
    def test_eight_thread_hammer_exact_totals(self):
        """8 threads × counters/gauges/histograms on shared and
        per-thread label children: totals are exact, the histogram
        invariant holds, nothing raises."""
        reg = MetricsRegistry()
        counter = reg.counter("ops_total", "ops", labelnames=("thread",))
        shared = reg.counter("shared_total", "all threads on one child")
        gauge = reg.gauge("inflight", "up then down")
        hist = reg.histogram("size", "observed", buckets=(1.0, 8.0, 64.0))
        errors: list[BaseException] = []
        barrier = threading.Barrier(N_THREADS)

        def worker(i: int) -> None:
            try:
                mine = counter.labels(f"t{i}")
                barrier.wait()
                for r in range(REPS):
                    mine.inc()
                    shared.inc()
                    gauge.inc()
                    hist.observe(float((i + r) % 100))
                    gauge.dec()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        assert shared._solo().value == N_THREADS * REPS
        for i in range(N_THREADS):
            assert counter.labels(f"t{i}").value == REPS
        assert gauge._solo().value == 0.0
        counts, _sum, count = hist._solo().snapshot()
        assert count == N_THREADS * REPS
        assert sum(counts) == count

    def test_concurrent_scrapes_stay_parseable(self):
        """Rendering while writers mutate must never produce malformed
        text — each child snapshot is taken under its own lock."""
        reg = MetricsRegistry()
        c = reg.counter("w_total", "writes")
        h = reg.histogram("w_lat", "latency", buckets=(0.1, 1.0))
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            while not stop.is_set():
                c.inc()
                h.observe(0.5)

        def scraper() -> None:
            try:
                for _ in range(50):
                    exp = parse(render(reg))
                    buckets = exp.histogram_counts("w_lat")
                    # cumulative le buckets never decrease left to right
                    assert buckets["0.1"] <= buckets["1"] <= buckets["+Inf"]
                    assert buckets["+Inf"] == exp.value("w_lat_count")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        ws = [threading.Thread(target=writer) for _ in range(4)]
        ss = [threading.Thread(target=scraper) for _ in range(2)]
        for t in ws + ss:
            t.start()
        for t in ss:
            t.join()
        stop.set()
        for t in ws:
            t.join()
        assert not errors, errors


class TestExposition:
    def test_render_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", 'says "hi"\nand more', labelnames=("ep",)).labels(
            'a"b\\c'
        ).inc(7)
        reg.gauge("temp", "gauge").set(-2.5)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.5, 2.0))
        h.observe(0.4)
        h.observe(1.9)
        h.observe(10.0)

        text = render(reg)
        assert "utf-8" in CONTENT_TYPE
        exp = parse(text)
        assert exp.types["hits_total"] == "counter"
        assert exp.types["lat_seconds"] == "histogram"
        assert exp.value("hits_total", ep='a"b\\c') == 7.0
        assert exp.value("temp") == -2.5
        # integral bounds render without a trailing .0 in the le label
        assert exp.histogram_counts("lat_seconds") == {
            "0.5": 1.0,
            "2": 2.0,
            "+Inf": 3.0,
        }
        assert exp.value("lat_seconds_count") == 3.0
        assert exp.value("lat_seconds_sum") == pytest.approx(12.3)

    def test_parser_rejects_malformed(self):
        for bad in (
            "no_type_line 1.0\n",  # sample without # TYPE
            "# TYPE x counter\n# TYPE x counter\nx 1\n",  # duplicate TYPE
            "# TYPE x counter\nx 1\nx 2\n",  # duplicate series
            "# TYPE x counter\nx one\n",  # non-numeric value
        ):
            with pytest.raises(ValueError):
                parse(bad)

    def test_collector_families_merge_into_scrape(self):
        reg = MetricsRegistry()
        calls = {"n": 0}

        def collect():
            from repro.obs.metrics import MetricFamily, Sample

            calls["n"] += 1
            return [
                MetricFamily(
                    name="ext_rows",
                    kind="gauge",
                    help="from a stats() bridge",
                    samples=[Sample("", (("shard", "0"),), 42.0)],
                )
            ]

        reg.register_collector(collect)
        exp = parse(render(reg))
        assert exp.value("ext_rows", shard="0") == 42.0
        assert calls["n"] == 1  # collectors run at scrape time only


class TestEngineTelemetry:
    def test_record_run_folds_result_counters(self):
        from repro.core.solver import PreprocessedSSSP
        from tests.helpers import random_connected_graph

        g = random_connected_graph(40, 90, seed=7)
        sp = PreprocessedSSSP(g, k=1, rho=4, heuristic="full")
        reg = MetricsRegistry()
        sp.set_observer(EngineTelemetry(reg))
        engine = sp.resolve_engine("auto")
        sp.solve(0)
        sp.solve(1)

        exp = parse(render(reg))
        assert exp.value("engine_solves_total", engine=engine) == 2.0
        steps = exp.histogram_counts("engine_solve_steps", engine=engine)
        assert steps["+Inf"] == 2.0
        relax = exp.histogram_counts("engine_solve_relaxations", engine=engine)
        assert relax["+Inf"] == 2.0

    def test_solve_many_records_per_source_runs(self):
        from repro.core.solver import PreprocessedSSSP
        from tests.helpers import random_connected_graph

        g = random_connected_graph(40, 90, seed=9)
        sp = PreprocessedSSSP(g, k=1, rho=4, heuristic="full")
        reg = MetricsRegistry()
        sp.set_observer(EngineTelemetry(reg))
        engine = sp.resolve_engine("auto")
        sp.solve_many([0, 1, 2, 3], n_jobs=2)

        exp = parse(render(reg))
        assert exp.value("engine_solves_total", engine=engine) == 4.0

    def test_legacy_plugin_engine_still_gets_run_totals(self):
        """A plugin registered without the ``obs`` keyword (the
        pre-telemetry convention) must keep working, and the dispatcher
        still folds its run totals in post-hoc."""
        from repro.core import dijkstra
        from repro.engine import register_engine, solve_with_engine
        from repro.engine.registry import _REGISTRY
        from tests.helpers import random_connected_graph

        def legacy(graph, source, radii, *, track_parents, track_trace, ledger):
            return dijkstra(graph, source, track_parents=track_parents)

        g = random_connected_graph(20, 40, seed=3)
        reg = MetricsRegistry()
        name = "legacy-obs-test"
        register_engine(name, legacy, description="test plugin")
        try:
            res = solve_with_engine(name, g, 0, obs=EngineTelemetry(reg))
        finally:
            _REGISTRY.pop(name, None)
        assert res.dist is not None
        exp = parse(render(reg))
        assert exp.value("engine_solves_total", engine=name) == 1.0
