"""Request tracing: span trees, ambient propagation, the slow log.

The contract under test: :func:`span` is a shared no-op outside a
trace (instrumented hot paths cost nothing for un-traced callers),
builds a correctly nested tree inside one, propagates through the
planner / router / solver layers with zero signature plumbing, and
never leaks between threads.
"""

import threading

import pytest

from repro.obs import (
    SlowQueryLog,
    Trace,
    annotate,
    current_span,
    current_trace,
    new_request_id,
    span,
    trace_request,
)


class TestSpanMechanics:
    def test_no_trace_is_shared_noop(self):
        assert current_span() is None
        assert current_trace() is None
        cm1, cm2 = span("a"), span("b", key=1)
        assert cm1 is cm2  # one shared object, no allocation
        with cm1:
            assert current_span() is None
        annotate(ignored=True)  # no-op, must not raise

    def test_nesting_builds_a_tree(self):
        with trace_request("GET distances", "req-1") as trace:
            assert trace.request_id == "req-1"
            assert current_trace() is trace
            assert current_span() is trace.root
            with span("outer", layer="planner"):
                with span("inner-1"):
                    annotate(rows=3)
                with span("inner-2"):
                    pass
            with span("sibling"):
                pass
        root = trace.root
        assert [c.name for c in root.children] == ["outer", "sibling"]
        outer = root.children[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert outer.annotations == {"layer": "planner"}
        assert outer.children[0].annotations == {"rows": 3}
        # every span closed with a real monotonic duration
        for s in root.walk():
            assert s.duration is not None and s.duration >= 0
        assert trace.duration == root.duration
        # and the context is clean again
        assert current_span() is None and current_trace() is None

    def test_exception_still_closes_spans(self):
        with pytest.raises(RuntimeError):
            with trace_request("boom") as trace:
                with span("will-fail"):
                    raise RuntimeError("x")
        assert trace.root.duration is not None
        assert trace.root.children[0].duration is not None
        assert current_span() is None

    def test_to_dict_is_jsonable(self):
        import json

        with trace_request("GET route") as trace:
            with span("child", shard=2):
                pass
        doc = trace.to_dict()
        json.dumps(doc)  # must not raise
        assert doc["request_id"] == trace.request_id
        assert doc["trace"]["name"] == "GET route"
        child = doc["trace"]["children"][0]
        assert child["annotations"] == {"shard": 2}
        assert child["duration_ms"] >= 0

    def test_request_ids_unique(self):
        ids = {new_request_id() for _ in range(200)}
        assert len(ids) == 200

    def test_threads_do_not_share_spans(self):
        """Each thread carries its own context: a trace opened here is
        invisible to a worker thread, and vice versa."""
        seen = {}

        def worker() -> None:
            seen["span"] = current_span()
            with trace_request("worker-trace") as t:
                with span("worker-child"):
                    pass
            seen["worker_children"] = [c.name for c in t.root.children]

        with trace_request("main-trace") as trace:
            with span("main-child"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        assert seen["span"] is None  # no leak into the worker
        assert seen["worker_children"] == ["worker-child"]
        assert [c.name for c in trace.root.children] == ["main-child"]


class TestLayerPropagation:
    @pytest.fixture(scope="class")
    def planner(self):
        from repro.core.solver import PreprocessedSSSP
        from repro.serve import QueryPlanner
        from tests.helpers import random_connected_graph

        g = random_connected_graph(40, 90, seed=5)
        return QueryPlanner(
            PreprocessedSSSP(g, k=1, rho=4, heuristic="full"), capacity=16
        )

    def test_planner_spans(self, planner):
        """A cache-miss execute grows planner.execute →
        planner.solve_missing → solver.solve_many under the root."""
        from repro.serve import SingleSource

        with trace_request("GET distances") as trace:
            planner.execute([SingleSource(0), SingleSource(1)])
        names = [s.name for s in trace.root.walk()]
        assert "planner.execute" in names
        assert "planner.solve_missing" in names
        assert "solver.solve_many" in names
        execute = next(
            s for s in trace.root.walk() if s.name == "planner.execute"
        )
        assert execute.annotations["queries"] == 2
        assert execute.annotations["distinct_sources"] == 2
        solve = next(
            s for s in trace.root.walk() if s.name == "planner.solve_missing"
        )
        assert solve.annotations["sources"] == 2

    def test_planner_cache_hit_skips_solve_span(self, planner):
        from repro.serve import SingleSource

        planner.execute([SingleSource(3)])  # warm outside any trace
        with trace_request("GET distances") as trace:
            planner.execute([SingleSource(3)])
        names = [s.name for s in trace.root.walk()]
        assert "planner.execute" in names
        assert "planner.solve_missing" not in names  # pure cache hit

    def test_router_spans(self):
        """A cold sharded query walks router.stitch →
        router.source_row / router.overlay_solve / router.fold_shard."""
        from repro.serve import ShardRouter
        from tests.helpers import random_connected_graph

        g = random_connected_graph(48, 110, seed=13, weight_high=30)
        router = ShardRouter(g, n_shards=3, k=1, rho=6, heuristic="full")
        with trace_request("GET distances") as trace:
            router.distances(7)
        by_name: dict[str, list] = {}
        for s in trace.root.walk():
            by_name.setdefault(s.name, []).append(s)
        assert "router.stitch" in by_name
        stitch = by_name["router.stitch"][0]
        child_names = {c.name for c in stitch.children}
        assert "router.source_row" in child_names
        assert "router.overlay_solve" in child_names
        assert "router.fold_shard" in child_names
        # every shard folded exactly once
        assert len(by_name["router.fold_shard"]) == 3

        # warm: the stitched row is cached, no stitch span this time
        with trace_request("GET distances") as warm:
            router.distances(7)
        assert all(s.name != "router.stitch" for s in warm.root.walk())


class TestSlowQueryLog:
    @staticmethod
    def _finished_trace(name="GET x") -> Trace:
        with trace_request(name) as trace:
            pass
        return trace

    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=1e6, capacity=4)
        assert log.record(self._finished_trace()) is False
        everything = SlowQueryLog(threshold_ms=0.0, capacity=4)
        assert everything.record(self._finished_trace()) is True
        doc = everything.dump()
        assert doc["seen"] == 1 and doc["recorded"] == 1
        assert log.dump()["seen"] == 1 and log.dump()["recorded"] == 0

    def test_ring_buffer_newest_first(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for i in range(4):
            log.record(self._finished_trace(f"req-{i}"), idx=i)
        doc = log.dump()
        assert doc["recorded"] == 4
        assert len(doc["entries"]) == 2  # oldest evicted
        assert [e["idx"] for e in doc["entries"]] == [3, 2]  # newest first
        assert doc["entries"][0]["trace"]["name"] == "req-3"

    def test_extra_fields_merged(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record(self._finished_trace(), endpoint="distances", status=200)
        entry = log.dump()["entries"][0]
        assert entry["endpoint"] == "distances"
        assert entry["status"] == 200
        assert "request_id" in entry

    def test_clear_keeps_totals(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record(self._finished_trace())
        log.clear()
        doc = log.dump()
        assert doc["entries"] == []
        assert doc["seen"] == 1  # totals are lifetime, not buffer, state

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
