"""Unit tests for the process-pool substrate."""

import numpy as np
import pytest

from repro.parallel import parallel_map, resolve_jobs, split_evenly


def square_chunk(offset, chunk):
    return [(int(x) + offset) ** 2 for x in chunk]


class TestSplitEvenly:
    def test_partition_covers_input(self):
        chunks = split_evenly(np.arange(10), 3)
        assert np.array_equal(np.concatenate(chunks), np.arange(10))

    def test_no_empty_chunks(self):
        chunks = split_evenly(np.arange(3), 8)
        assert all(len(c) for c in chunks)
        assert len(chunks) == 3

    def test_empty_input(self):
        assert split_evenly(np.empty(0), 4) == []

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_evenly(np.arange(3), 0)


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_means_cores(self):
        assert resolve_jobs(-1) >= 1


class TestParallelMap:
    def test_serial(self):
        out = parallel_map(square_chunk, np.arange(6), fn_args=(1,))
        flat = [x for block in out for x in block]
        assert flat == [(i + 1) ** 2 for i in range(6)]

    def test_parallel_matches_serial(self):
        serial = parallel_map(square_chunk, np.arange(25), fn_args=(0,), n_jobs=1)
        para = parallel_map(square_chunk, np.arange(25), fn_args=(0,), n_jobs=2)
        assert [x for b in serial for x in b] == [x for b in para for x in b]

    def test_empty_items(self):
        assert parallel_map(square_chunk, np.empty(0), fn_args=(0,)) == []

    def test_kwargs_forwarded(self):
        def f(chunk, *, scale):
            return [int(x) * scale for x in chunk]

        out = parallel_map(f, np.arange(4), fn_kwargs={"scale": 10})
        assert [x for b in out for x in b] == [0, 10, 20, 30]
