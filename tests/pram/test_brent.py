"""Tests for the Brent machine simulation over ledgers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import radius_stepping
from repro.pram import (
    Ledger,
    brent_bounds,
    simulated_time,
    speedup_curve,
)

from tests.helpers import random_connected_graph


def charged(phases, *, record=False) -> Ledger:
    led = Ledger(record_phases=record)
    for w, d in phases:
        led.charge(work=w, depth=d)
    return led


class TestBounds:
    def test_single_processor_is_work_plus_depth(self):
        led = charged([(100, 4), (50, 2)])
        assert simulated_time(led, 1) == 150 + 6

    def test_single_processor_phase_accurate_is_work_dominated(self):
        """At p=1 every superstep is work-bound: sum max(W_i, D_i) = W
        when each phase has W_i >= D_i."""
        led = charged([(100, 4), (50, 2)], record=True)
        assert simulated_time(led, 1) == pytest.approx(150.0)

    def test_infinite_processors_hit_depth(self):
        led = charged([(100, 4), (50, 2)], record=True)
        assert simulated_time(led, 10**9) == pytest.approx(6.0)

    def test_lower_bound_never_exceeds_upper(self):
        led = charged([(100, 4), (50, 2)])
        for p in (1, 2, 7, 100):
            b = brent_bounds(led, p)
            assert b.lower <= b.upper
            assert b.lower <= b.midpoint <= b.upper

    def test_phase_estimate_tighter_than_totals_upper(self):
        phases = [(100, 4), (50, 2), (7, 1)]
        with_phases = charged(phases, record=True)
        totals_only = charged(phases, record=False)
        for p in (2, 5, 50):
            assert simulated_time(with_phases, p) < simulated_time(totals_only, p)

    def test_validation(self):
        led = charged([(10, 1)])
        with pytest.raises(ValueError):
            brent_bounds(led, 0)
        with pytest.raises(ValueError):
            simulated_time(led, -1)

    @given(
        phases=st.lists(
            st.tuples(
                st.floats(0, 1e6, allow_nan=False),
                st.floats(0, 1e3, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        ),
        p=st.integers(1, 10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_brent_inequality_property(self, phases, p):
        """The phase-accurate estimate always lies within Brent's bounds
        and is monotone non-increasing in p."""
        led = charged(phases, record=True)
        b = brent_bounds(led, p)
        t = simulated_time(led, p)
        assert b.lower - 1e-6 <= t <= b.upper + 1e-6
        assert t >= simulated_time(led, p + 1) - 1e-6


class TestSpeedupCurve:
    def test_monotone_and_saturating(self):
        led = charged([(1000, 1)] * 20, record=True)
        pts = speedup_curve(led, [1, 2, 4, 8, 16, 10**6])
        speeds = [pt.speedup for pt in pts]
        assert speeds == sorted(speeds)
        assert pts[0].speedup == pytest.approx(1.0)
        # saturation at the parallelism factor W/D
        assert pts[-1].speedup <= led.work / led.depth + 1.0

    def test_efficiency_decreases(self):
        led = charged([(500, 2)] * 10)
        pts = speedup_curve(led, [1, 4, 16, 64])
        effs = [pt.efficiency for pt in pts]
        assert all(effs[i] >= effs[i + 1] - 1e-9 for i in range(len(effs) - 1))


class TestOnRealSolver:
    def test_radius_stepping_scales_with_rho_radii(self):
        """Bigger radii -> fewer, fatter steps -> smaller simulated time
        at large p (the paper's whole point)."""
        g = random_connected_graph(120, 300, seed=0, weight_high=20)
        small, big = Ledger(record_phases=True), Ledger(record_phases=True)
        radius_stepping(g, 0, 0.0, ledger=small)
        radius_stepping(g, 0, 50.0, ledger=big)
        p = 1024
        assert simulated_time(big, p) < simulated_time(small, p)

    def test_phases_recorded(self):
        g = random_connected_graph(30, 70, seed=1)
        led = Ledger(record_phases=True)
        radius_stepping(g, 0, 5.0, ledger=led)
        assert led.phases, "solver charges must appear as phases"
        assert sum(w for w, _ in led.phases) == pytest.approx(led.work)
        assert sum(d for _, d in led.phases) == pytest.approx(led.depth)

    def test_reset_clears_phases(self):
        led = Ledger(record_phases=True)
        led.charge(work=5, depth=1)
        led.reset()
        assert led.phases == [] and led.work == 0.0
