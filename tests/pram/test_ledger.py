"""Unit tests for the PRAM work/depth ledger."""

import pytest

from repro.pram import Ledger


class TestCharge:
    def test_sequential_adds(self):
        led = Ledger()
        led.charge(work=10, depth=2)
        led.charge(work=5, depth=3)
        assert led.work == 15 and led.depth == 5

    def test_labels(self):
        led = Ledger()
        led.charge(work=4, depth=1, label="relax")
        led.charge(work=6, depth=2, label="relax")
        led.charge(work=1, depth=1, label="min")
        assert led.by_label["relax"] == [10, 3]
        assert led.by_label["min"] == [1, 1]

    def test_negative_rejected(self):
        led = Ledger()
        with pytest.raises(ValueError):
            led.charge(work=-1, depth=0)
        with pytest.raises(ValueError):
            led.charge(work=0, depth=-1)

    def test_reset(self):
        led = Ledger()
        led.charge(work=3, depth=3, label="x")
        led.reset()
        assert led.work == 0 and led.depth == 0 and not led.by_label


class TestParallelBlock:
    def test_max_depth_sum_work(self):
        led = Ledger()
        with led.parallel("fanout") as p:
            p.task(work=10, depth=4)
            p.task(work=20, depth=2)
        assert led.work == 30
        assert led.depth == 4

    def test_negative_task_rejected(self):
        led = Ledger()
        with pytest.raises(ValueError):
            with led.parallel() as p:
                p.task(work=-1, depth=0)

    def test_exception_skips_posting(self):
        led = Ledger()
        with pytest.raises(RuntimeError):
            with led.parallel() as p:
                p.task(work=5, depth=5)
                raise RuntimeError("boom")
        assert led.work == 0


class TestMergeParallel:
    def test_work_adds_depth_maxes(self):
        a, b = Ledger(), Ledger()
        a.charge(work=10, depth=8)
        b.charge(work=7, depth=3, label="ball")
        a.merge_parallel(b)
        assert a.work == 17
        assert a.depth == 8
        assert a.by_label["ball"] == [7, 3]

    def test_label_merge(self):
        a, b = Ledger(), Ledger()
        a.charge(work=1, depth=5, label="x")
        b.charge(work=2, depth=9, label="x")
        a.merge_parallel(b)
        assert a.by_label["x"] == [3, 9]


class TestDerived:
    def test_parallelism(self):
        led = Ledger()
        led.charge(work=100, depth=4)
        assert led.parallelism == 25

    def test_parallelism_zero_depth(self):
        assert Ledger().parallelism == float("inf")

    def test_snapshot(self):
        led = Ledger()
        led.charge(work=8, depth=2)
        snap = led.snapshot()
        assert snap == {"work": 8.0, "depth": 2.0, "parallelism": 4.0}
