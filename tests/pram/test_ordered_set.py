"""Unit + property tests for the vertex-keyed ordered set (Q/R substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import Ledger, VertexKeyedSet


class TestBasics:
    def test_insert_contains(self):
        s = VertexKeyedSet()
        s.insert(3, 1.5)
        assert 3 in s and len(s) == 1
        assert s.value_of(3) == 1.5

    def test_insert_overwrites(self):
        s = VertexKeyedSet()
        s.insert(3, 5.0)
        s.insert(3, 2.0)
        assert len(s) == 1
        assert s.min() == (2.0, 3)

    def test_remove(self):
        s = VertexKeyedSet()
        s.insert(1, 1.0)
        s.remove(1)
        assert 1 not in s and len(s) == 0
        s.remove(1)  # no-op

    def test_min_orders_by_value_then_vertex(self):
        s = VertexKeyedSet()
        s.insert(9, 2.0)
        s.insert(4, 2.0)
        s.insert(7, 3.0)
        assert s.min() == (2.0, 4)

    def test_min_empty(self):
        with pytest.raises(KeyError):
            VertexKeyedSet().min()

    def test_decrease_key(self):
        s = VertexKeyedSet()
        s.insert(1, 10.0)
        s.decrease_key(1, 4.0)
        assert s.min() == (4.0, 1)
        with pytest.raises(ValueError):
            s.decrease_key(1, 99.0)


class TestSplitLeq:
    def test_removes_and_returns(self):
        s = VertexKeyedSet()
        for v, val in [(0, 1.0), (1, 2.0), (2, 3.0)]:
            s.insert(v, val)
        taken = s.split_leq(2.0)
        assert taken == [(1.0, 0), (2.0, 1)]
        assert len(s) == 1 and 2 in s

    def test_ties_all_taken(self):
        s = VertexKeyedSet()
        for v in range(5):
            s.insert(v, 7.0)
        assert len(s.split_leq(7.0)) == 5

    def test_nothing_below(self):
        s = VertexKeyedSet()
        s.insert(0, 5.0)
        assert s.split_leq(1.0) == []
        assert len(s) == 1


class TestBulkOps:
    def test_union_values(self):
        s = VertexKeyedSet()
        s.insert(0, 9.0)
        s.union_values([(0, 4.0), (1, 2.0)])
        assert s.items_sorted() == [(2.0, 1), (4.0, 0)]

    def test_difference_vertices(self):
        s = VertexKeyedSet()
        for v in range(4):
            s.insert(v, float(v))
        s.difference_vertices([1, 3, 99])
        assert s.items_sorted() == [(0.0, 0), (2.0, 2)]

    def test_empty_bulk_noop(self):
        s = VertexKeyedSet()
        s.union_values([])
        s.difference_vertices([])
        assert len(s) == 0


class TestLedger:
    def test_charges_accumulate(self):
        led = Ledger()
        s = VertexKeyedSet(ledger=led, label="Q")
        for v in range(16):
            s.insert(v, float(v))
        s.split_leq(8.0)
        assert led.work > 0
        assert "Q" in led.by_label


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "split"]),
            st.integers(0, 15),
            st.integers(0, 40),
        ),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_model_based_against_dict(ops):
    """Random op sequences agree with a plain-dict model."""
    s = VertexKeyedSet()
    model: dict[int, float] = {}
    for op, v, val in ops:
        if op == "insert":
            s.insert(v, float(val))
            model[v] = float(val)
        elif op == "remove":
            s.remove(v)
            model.pop(v, None)
        else:
            taken = s.split_leq(float(val))
            expect = sorted((x, u) for u, x in model.items() if x <= val)
            assert taken == expect
            for _, u in taken:
                del model[u]
        assert len(s) == len(model)
        assert s.items_sorted() == sorted((x, u) for u, x in model.items())
