"""Stateful model checking of VertexKeyedSet against a dict model.

Algorithm 2's correctness rests entirely on Q and R behaving as exact
ordered sets under arbitrary interleavings of insert / remove /
decrease-key / split / bulk union / bulk difference.  Unit tests cover
chosen sequences; this rule-based state machine lets hypothesis drive
*adversarial* sequences and compares every observable against a plain
dict model after each rule.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.pram.ordered_set import VertexKeyedSet

VERTICES = st.integers(0, 15)
VALUES = st.integers(0, 40).map(float)  # ints: exact float comparisons


class OrderedSetMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.real = VertexKeyedSet()
        self.model: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    @rule(v=VERTICES, val=VALUES)
    def insert(self, v, val):
        self.real.insert(v, val)
        self.model[v] = val

    @rule(v=VERTICES)
    def remove(self, v):
        self.real.remove(v)
        self.model.pop(v, None)

    @rule(v=VERTICES, delta=st.integers(0, 10))
    def decrease_key(self, v, delta):
        if v in self.model:
            val = self.model[v] - delta
            self.real.decrease_key(v, val)
            self.model[v] = val

    @rule(bound=VALUES)
    def split_leq(self, bound):
        taken = self.real.split_leq(bound)
        expect = sorted(
            (val, v) for v, val in self.model.items() if val <= bound
        )
        assert taken == expect
        for _, v in taken:
            del self.model[v]

    @rule(entries=st.lists(st.tuples(VERTICES, VALUES), max_size=6))
    def union_values(self, entries):
        self.real.union_values(entries)
        self.model.update(dict(entries))

    @rule(vs=st.lists(VERTICES, max_size=6))
    def difference_vertices(self, vs):
        self.real.difference_vertices(vs)
        for v in vs:
            self.model.pop(v, None)

    # ------------------------------------------------------------------ #
    @invariant()
    def same_contents(self):
        assert len(self.real) == len(self.model)
        assert self.real.items_sorted() == sorted(
            (val, v) for v, val in self.model.items()
        )
        for v, val in self.model.items():
            assert v in self.real
            assert self.real.value_of(v) == val

    @invariant()
    def min_agrees(self):
        if self.model:
            assert self.real.min() == min(
                (val, v) for v, val in self.model.items()
            )


OrderedSetMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestOrderedSetStateful = OrderedSetMachine.TestCase
