"""Unit + property tests for the data-parallel primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import Ledger, pack, parallel_for_cost, prefix_sum, write_min


class TestWriteMin:
    def test_basic(self):
        vals = np.array([5.0, 5.0, 5.0])
        changed = write_min(vals, np.array([0, 2]), np.array([3.0, 7.0]))
        assert vals.tolist() == [3.0, 5.0, 5.0]
        assert changed.tolist() == [0]

    def test_duplicate_positions_take_min(self):
        vals = np.array([9.0])
        write_min(vals, np.array([0, 0, 0]), np.array([4.0, 2.0, 6.0]))
        assert vals[0] == 2.0

    def test_empty(self):
        vals = np.array([1.0])
        out = write_min(vals, np.empty(0, np.int64), np.empty(0))
        assert len(out) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            write_min(np.array([1.0]), np.array([0]), np.array([1.0, 2.0]))

    def test_ledger(self):
        led = Ledger()
        write_min(np.array([5.0]), np.array([0]), np.array([1.0]), ledger=led)
        assert led.by_label["write_min"][1] == 1.0  # O(1) CRCW depth

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_sequential_loop(self, base, data):
        vals = np.array(base)
        k = data.draw(st.integers(0, 30))
        pos = data.draw(
            st.lists(
                st.integers(0, len(base) - 1), min_size=k, max_size=k
            )
        )
        upd = data.draw(
            st.lists(
                st.floats(0, 100, allow_nan=False), min_size=k, max_size=k
            )
        )
        expect = np.array(base)
        for p, u in zip(pos, upd):
            expect[p] = min(expect[p], u)
        write_min(vals, np.array(pos, dtype=np.int64), np.array(upd))
        assert np.array_equal(vals, expect)


class TestPack:
    def test_basic(self):
        out = pack(np.array([1, 2, 3, 4]), np.array([True, False, True, False]))
        assert out.tolist() == [1, 3]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.array([1]), np.array([True, False]))

    def test_ledger_depth_logarithmic(self):
        led = Ledger()
        pack(np.arange(1024), np.ones(1024, dtype=bool), ledger=led)
        assert led.by_label["pack"] == [1024.0, 10.0]


class TestPrefixSum:
    def test_inclusive(self):
        out = prefix_sum(np.array([1, 2, 3]))
        assert out.tolist() == [1, 3, 6]

    def test_exclusive(self):
        out = prefix_sum(np.array([1, 2, 3]), inclusive=False)
        assert out.tolist() == [0, 1, 3]

    def test_ledger(self):
        led = Ledger()
        prefix_sum(np.arange(8), ledger=led)
        assert led.by_label["prefix_sum"] == [8.0, 3.0]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_matches_cumsum(self, xs):
        arr = np.array(xs)
        assert np.array_equal(prefix_sum(arr), np.cumsum(arr))


class TestParallelForCost:
    def test_formula(self):
        assert parallel_for_cost(10, 3.0, 2.0) == (30.0, 2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parallel_for_cost(-1, 1.0, 1.0)
