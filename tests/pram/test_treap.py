"""Property-based tests for the join-based treap substrate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import treap

keys = st.lists(st.integers(-100, 100), max_size=60)
key_sets = st.sets(st.integers(-100, 100), max_size=60)


def build(items) -> treap.Treap:
    t = None
    for k in items:
        t = treap.insert(t, k)
    return t


class TestBasicOps:
    def test_empty(self):
        assert treap.size(None) == 0
        assert treap.to_list(None) == []
        with pytest.raises(KeyError):
            treap.find_min(None)
        with pytest.raises(KeyError):
            treap.find_max(None)

    def test_insert_find(self):
        t = build([5, 1, 9])
        assert treap.find(t, 5) and treap.find(t, 1) and treap.find(t, 9)
        assert not treap.find(t, 4)

    def test_insert_idempotent(self):
        t = build([3, 3, 3])
        assert treap.size(t) == 1

    def test_delete_absent_noop(self):
        t = build([1, 2])
        assert treap.to_list(treap.delete(t, 9)) == [1, 2]

    @given(keys)
    @settings(max_examples=60, deadline=None)
    def test_inorder_sorted_unique(self, items):
        t = build(items)
        lst = treap.to_list(t)
        assert lst == sorted(set(items))
        assert treap.size(t) == len(set(items))

    @given(key_sets)
    @settings(max_examples=40, deadline=None)
    def test_min_max(self, items):
        t = build(items)
        if items:
            assert treap.find_min(t) == min(items)
            assert treap.find_max(t) == max(items)

    @given(key_sets)
    @settings(max_examples=40, deadline=None)
    def test_iter_matches_to_list(self, items):
        t = build(items)
        assert list(treap.iter_keys(t)) == treap.to_list(t)


class TestSplitJoin:
    @given(key_sets, st.integers(-120, 120))
    @settings(max_examples=60, deadline=None)
    def test_split_partitions(self, items, pivot):
        t = build(items)
        l, found, r = treap.split(t, pivot)
        assert found == (pivot in items)
        assert treap.to_list(l) == sorted(k for k in items if k < pivot)
        assert treap.to_list(r) == sorted(k for k in items if k > pivot)

    @given(key_sets, st.integers(-120, 120))
    @settings(max_examples=60, deadline=None)
    def test_split_leq(self, items, pivot):
        t = build(items)
        lo, hi = treap.split_leq(t, pivot)
        assert treap.to_list(lo) == sorted(k for k in items if k <= pivot)
        assert treap.to_list(hi) == sorted(k for k in items if k > pivot)

    def test_join_ordered(self):
        l = build([1, 2])
        r = build([10, 11])
        assert treap.to_list(treap.join(l, 5, r)) == [1, 2, 5, 10, 11]

    def test_from_sorted(self):
        t = treap.from_sorted([1, 4, 9])
        assert treap.to_list(t) == [1, 4, 9]


class TestSetAlgebra:
    @given(key_sets, key_sets)
    @settings(max_examples=60, deadline=None)
    def test_union_semantics(self, a, b):
        t = treap.union(build(a), build(b))
        assert treap.to_list(t) == sorted(a | b)

    @given(key_sets, key_sets)
    @settings(max_examples=60, deadline=None)
    def test_difference_semantics(self, a, b):
        t = treap.difference(build(a), build(b))
        assert treap.to_list(t) == sorted(a - b)

    @given(key_sets, key_sets)
    @settings(max_examples=30, deadline=None)
    def test_persistence(self, a, b):
        """Operands survive union/difference untouched (persistent trees)."""
        ta, tb = build(a), build(b)
        before_a, before_b = treap.to_list(ta), treap.to_list(tb)
        treap.union(ta, tb)
        treap.difference(ta, tb)
        assert treap.to_list(ta) == before_a
        assert treap.to_list(tb) == before_b


class TestBalance:
    def test_expected_logarithmic_height(self):
        n = 4096
        t = build(range(n))  # adversarial sorted insertion order
        h = treap.height(t)
        # Expected height ~ 3 log2 n; allow generous slack to kill flakes.
        assert h <= 6 * math.log2(n), f"height {h} too large for n={n}"

    def test_deterministic_structure(self):
        a = build([5, 2, 8, 1])
        b = build([1, 8, 2, 5])
        # Same key set -> same treap shape (priorities derive from keys).
        def shape(t):
            if t is None:
                return None
            return (t.key, shape(t.left), shape(t.right))

        assert shape(a) == shape(b)

    def test_size_augmentation(self):
        t = build(range(100))
        assert t.count == 100
        l, _, r = treap.split(t, 40)
        assert treap.size(l) + treap.size(r) == 99


class TestTupleKeys:
    def test_distance_vertex_pairs(self):
        """The solver's (distance, vertex) lexicographic keys."""
        t = build([(2.0, 7), (1.5, 3), (2.0, 1)])
        assert treap.find_min(t) == (1.5, 3)
        lo, hi = treap.split_leq(t, (2.0, float("inf")))
        assert treap.size(lo) == 3 and treap.size(hi) == 0
