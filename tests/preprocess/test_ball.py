"""Unit + property tests for the truncated Dijkstra ball search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dijkstra
from repro.graphs.generators import figure2_graph, grid_2d, path_graph, star_graph
from repro.preprocess import ball_search, sort_adjacency_by_weight

from tests.helpers import random_connected_graph


class TestBasics:
    def test_source_settles_first(self):
        g = grid_2d(4, 4)
        ball = ball_search(g, 5, 6)
        assert ball.order[0] == 5
        assert ball.dist[0] == 0.0
        assert ball.hops[0] == 0
        assert ball.parent[0] == -1

    def test_distances_sorted(self):
        g = random_connected_graph(50, 120, seed=1)
        ball = ball_search(g, 0, 20)
        assert (np.diff(ball.dist) >= 0).all()

    def test_matches_dijkstra_prefix(self):
        """Settled set = the ρ closest vertices by true distance."""
        g = random_connected_graph(60, 150, seed=2, weight_high=10**6)
        rho = 17
        ball = ball_search(g, 3, rho, include_ties=False)
        ref = np.sort(dijkstra(g, 3).dist)
        assert np.allclose(np.sort(ball.dist), ref[:rho])

    def test_parent_is_earlier_settle(self):
        g = random_connected_graph(40, 90, seed=3)
        ball = ball_search(g, 0, 25)
        seen = set()
        for v, p in zip(ball.order.tolist(), ball.parent.tolist()):
            if p != -1:
                assert p in seen
            seen.add(v)

    def test_bad_args(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            ball_search(g, 9, 2)
        with pytest.raises(ValueError):
            ball_search(g, 0, 0)


class TestTies:
    def test_include_ties_extends_through_distance_class(self):
        g = star_graph(8)  # all leaves at distance 1
        ball = ball_search(g, 0, 3, include_ties=True)
        assert len(ball) == 9  # source + all 8 tied leaves

    def test_exact_mode_stops_at_rho(self):
        g = star_graph(8)
        ball = ball_search(g, 0, 3, include_ties=False)
        assert len(ball) == 3

    def test_r_rho_unaffected_by_ties_mode(self):
        g = random_connected_graph(40, 90, seed=4, weight_high=5)
        for rho in (3, 9, 15):
            a = ball_search(g, 0, rho, include_ties=True)
            b = ball_search(g, 0, rho, include_ties=False)
            assert a.r_rho(rho) == b.r_rho(rho)


class TestRRho:
    def test_self_counting_convention(self):
        """r_1 = 0: the closest vertex to v is v itself (DESIGN.md pin)."""
        g = random_connected_graph(20, 45, seed=5)
        ball = ball_search(g, 7, 5)
        assert ball.r_rho(1) == 0.0

    def test_r_2_is_lightest_incident_edge(self):
        g = random_connected_graph(20, 45, seed=6)
        ball = ball_search(g, 7, 5)
        assert ball.r_rho(2) == g.neighbor_weights(7).min()

    def test_monotone_in_rho(self):
        g = random_connected_graph(50, 110, seed=7)
        ball = ball_search(g, 0, 30)
        values = [ball.r_rho(r) for r in range(1, 31)]
        assert values == sorted(values)

    def test_beyond_component_returns_radius(self):
        g = path_graph(4)
        ball = ball_search(g, 0, 99)
        assert ball.complete
        assert ball.r_rho(99) == 3.0

    def test_invalid_rho(self):
        ball = ball_search(path_graph(3), 0, 2)
        with pytest.raises(ValueError):
            ball.r_rho(0)

    def test_prefix_size_counts_ties(self):
        g = star_graph(6)
        ball = ball_search(g, 0, 4, include_ties=True)
        assert ball.prefix_size(2) == 7  # source + 6 tied leaves


class TestMinHopTree:
    def test_hops_minimal_over_shortest_paths(self):
        # 0-1-2-3 all weight 1; plus 0-4 (1.5), 4-3 (1.5): two shortest
        # paths to 3 with 3 vs 2 hops.
        from repro.graphs import from_edge_list

        g = from_edge_list(
            5,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 1.5), (4, 3, 1.5)],
        )
        ball = ball_search(g, 0, 5)
        idx = {int(v): i for i, v in enumerate(ball.order)}
        assert ball.hops[idx[3]] == 2
        assert ball.parent[idx[3]] == 4


class TestLightestEdgesRestriction:
    def test_requires_sorted_on_weighted(self):
        g = random_connected_graph(20, 45, seed=8)
        with pytest.raises(ValueError, match="weight-sorted"):
            ball_search(g, 0, 4, lightest_edges=True)

    def test_sorted_graph_allows_restriction(self):
        g = sort_adjacency_by_weight(random_connected_graph(30, 70, seed=9))
        ball = ball_search(g, 0, 5, lightest_edges=True, weight_sorted=True)
        assert len(ball) >= 5

    def test_interior_exact(self):
        """With ample rho, the restricted search still finds the true
        nearest vertices (Lemma 4.2's correctness argument)."""
        g = sort_adjacency_by_weight(
            random_connected_graph(40, 100, seed=10, weight_high=10**6)
        )
        rho = 12
        full = ball_search(g, 0, rho, include_ties=False)
        restricted = ball_search(
            g, 0, rho, include_ties=False, lightest_edges=True, weight_sorted=True
        )
        assert np.allclose(full.dist, restricted.dist)

    def test_unweighted_no_sorting_needed(self):
        g = grid_2d(5, 5)
        ball = ball_search(g, 0, 6, lightest_edges=True)
        assert len(ball) >= 6

    def test_edges_scanned_capped(self):
        g = figure2_graph(8)
        rho = 4  # much smaller than the biclique degree 16
        ball = ball_search(g, 0, rho, include_ties=False, lightest_edges=True)
        # each settle scans at most rho arcs
        assert ball.edges_scanned <= rho * len(ball)


class TestSortAdjacency:
    def test_rows_sorted(self):
        g = random_connected_graph(25, 60, seed=11)
        s = sort_adjacency_by_weight(g)
        for u in range(s.n):
            ws = s.neighbor_weights(u)
            assert (np.diff(ws) >= 0).all()

    def test_same_graph(self):
        g = random_connected_graph(25, 60, seed=11)
        s = sort_adjacency_by_weight(g)
        assert np.allclose(dijkstra(g, 0).dist, dijkstra(s, 0).dist)


@given(n=st.integers(6, 30), seed=st.integers(0, 10**6), rho=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_ball_prefix_property(n, seed, rho):
    """Property: ball distances equal the sorted Dijkstra prefix and the
    settle count is max(rho, tie closure) within the component size."""
    g = random_connected_graph(n, 2 * n, seed=seed, weight_high=9)
    ball = ball_search(g, 0, rho, include_ties=True)
    ref = np.sort(dijkstra(g, 0).dist)
    take = len(ball)
    assert np.allclose(ball.dist, ref[:take])
    if not ball.complete:
        assert take >= min(rho, n)
        boundary = ball.dist[-1]
        assert np.sum(ref <= boundary) == take  # ties fully included
