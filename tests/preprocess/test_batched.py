"""Batched ball-search engine: exact parity with the scalar reference.

The batched backend promises *bit-identical* results to the scalar heap
search on every output field — settle order, distances, min-hop depths,
parents, edges scanned, completeness — plus identical r_ρ arrays, ball
trees, and (k,ρ)-pipeline outputs.  This suite pins that promise across
every graph family in :mod:`repro.graphs.generators` and the edge cases
that break naive vectorizations (zero-weight ties, disconnected
components, ρ ≥ n, single vertices, lightest-edge caps, tiny slot
blocks that force multi-block runs).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edge_list
from repro.graphs.generators import (
    binary_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    figure2_graph,
    greedy_bad_tree,
    grid_2d,
    grid_3d,
    path_graph,
    random_geometric,
    road_network,
    scale_free,
    star_graph,
)
from repro.graphs.weights import random_integer_weights, uniform_weights
from repro.preprocess import (
    available_ball_backends,
    ball_search,
    batched_ball_search,
    batched_ball_trees,
    build_ball_tree,
    build_kr_graph,
    compute_radii_sweep,
    get_ball_backend,
    register_ball_backend,
    sort_adjacency_by_weight,
)

from tests.helpers import random_connected_graph


def assert_balls_equal(a, b, ctx=""):
    assert a.source == b.source, ctx
    for field in ("order", "dist", "hops", "parent"):
        got_a, got_b = getattr(a, field), getattr(b, field)
        assert np.array_equal(got_a, got_b), f"{ctx}: {field} differs"
        assert got_a.dtype == got_b.dtype, f"{ctx}: {field} dtype differs"
    assert a.edges_scanned == b.edges_scanned, ctx
    assert a.complete == b.complete, ctx


def assert_backend_parity(graph, rho, *, include_ties=True, **kwargs):
    sources = np.arange(graph.n, dtype=np.int64)
    batched = batched_ball_search(
        graph, sources, rho, include_ties=include_ties, **kwargs
    )
    assert len(batched) == graph.n
    for s, got in zip(sources, batched):
        ref = ball_search(
            graph, int(s), rho, include_ties=include_ties, **kwargs
        )
        assert_balls_equal(ref, got, ctx=f"source {s} rho {rho}")


#: every generator family, small enough for exhaustive all-sources parity
FAMILIES = [
    ("path", lambda: path_graph(17)),
    ("cycle", lambda: cycle_graph(16)),
    ("star", lambda: star_graph(9)),
    ("complete", lambda: complete_graph(8)),
    ("binary_tree", lambda: binary_tree(4)),
    ("grid_2d", lambda: grid_2d(5, 7)),
    ("grid_2d_diag", lambda: grid_2d(4, 5, diagonals=True)),
    ("grid_3d", lambda: grid_3d(3, 3, 3)),
    ("erdos_renyi", lambda: erdos_renyi(40, 100, seed=3)),
    ("scale_free", lambda: scale_free(40, attach=3, seed=4)),
    ("road_network", lambda: road_network(60, seed=5)[0]),
    ("random_geometric", lambda: random_geometric(50, 0.25, seed=6)[0]),
    ("figure2", lambda: figure2_graph(5)),
    ("greedy_bad_tree", lambda: greedy_bad_tree(3, 8)),
]


class TestFamilyParity:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    @pytest.mark.parametrize("include_ties", [True, False])
    def test_unit_weights(self, name, factory, include_ties):
        g = factory()
        assert_backend_parity(g, 6, include_ties=include_ties)

    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_integer_weights(self, name, factory):
        g = random_integer_weights(factory(), low=1, high=30, seed=11)
        assert_backend_parity(g, 7)

    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_float_weights(self, name, factory):
        g = uniform_weights(factory(), low=0.1, high=9.0, seed=12)
        assert_backend_parity(g, 5, include_ties=False)


class TestEdgeCases:
    def test_disconnected_components(self):
        g = from_edge_list(
            11,
            [
                (0, 1, 1.0),
                (1, 2, 2.0),
                (3, 4, 1.5),
                (5, 6, 1.0),
                (6, 7, 0.5),
                (7, 5, 0.5),
            ],
        )
        for rho in (1, 2, 4, 50):
            assert_backend_parity(g, rho)
            assert_backend_parity(g, rho, include_ties=False)

    def test_rho_exceeding_n(self):
        g = random_connected_graph(25, 60, seed=1)
        assert_backend_parity(g, g.n + 10)

    def test_zero_weight_ties(self):
        g = from_edge_list(
            7,
            [
                (0, 1, 0.0),
                (1, 2, 0.0),
                (2, 3, 1.0),
                (0, 4, 1.0),
                (4, 5, 0.0),
                (3, 5, 0.0),
                (5, 6, 2.0),
            ],
        )
        for rho in (1, 2, 3, 7):
            assert_backend_parity(g, rho)
            assert_backend_parity(g, rho, include_ties=False)

    def test_heavy_tie_classes(self):
        """Many equal distances stress the (dist, hops, id) settle order."""
        g = random_integer_weights(
            erdos_renyi(50, 140, seed=7), low=1, high=3, seed=8
        )
        assert_backend_parity(g, 9)
        assert_backend_parity(g, 9, include_ties=False)

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        for rho in (1, 3):
            assert_backend_parity(g, rho)

    def test_rho_one_zero_closure(self):
        g = from_edge_list(4, [(0, 1, 0.0), (1, 2, 1.0), (2, 3, 0.0)])
        assert_backend_parity(g, 1)
        assert_backend_parity(g, 1, include_ties=False)

    def test_lightest_edges_restriction(self):
        g = sort_adjacency_by_weight(
            random_connected_graph(40, 110, seed=9, weight_high=50)
        )
        assert_backend_parity(
            g, 5, include_ties=False, lightest_edges=True, weight_sorted=True
        )
        assert_backend_parity(
            g, 5, include_ties=True, lightest_edges=True, weight_sorted=True
        )

    def test_tiny_slot_blocks(self):
        """Multi-block runs (scratch reset between blocks) stay exact."""
        g = random_connected_graph(30, 70, seed=10)
        sources = np.arange(g.n, dtype=np.int64)
        a = batched_ball_search(g, sources, 6)
        b = batched_ball_search(g, sources, 6, slot_block=4)
        for x, y in zip(a, b):
            assert_balls_equal(x, y)

    def test_subset_and_repeated_sources(self):
        g = random_connected_graph(30, 70, seed=13)
        sources = np.array([5, 5, 0, 29, 5], dtype=np.int64)
        balls = batched_ball_search(g, sources, 4)
        for s, got in zip(sources, balls):
            assert_balls_equal(ball_search(g, int(s), 4), got)

    def test_input_validation(self):
        from repro.preprocess import batched_radii

        g = path_graph(4)
        with pytest.raises(ValueError, match="out of range"):
            batched_ball_search(g, np.array([9]), 2)
        with pytest.raises(ValueError, match="rho"):
            batched_ball_search(g, np.array([0]), 0)
        with pytest.raises(ValueError, match="weight-sorted"):
            batched_ball_search(
                g if not g.is_unweighted else random_connected_graph(6, 8),
                np.array([0]),
                2,
                lightest_edges=True,
            )
        # every public batched entry point rejects bad sources the same way
        with pytest.raises(ValueError, match="out of range"):
            batched_radii(g, np.array([0, 7, 2]), (2,))
        with pytest.raises(ValueError, match="out of range"):
            batched_ball_trees(g, np.array([-2]), 2)


class TestRadiiParity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: random_connected_graph(60, 150, seed=2, weight_high=40),
            lambda: grid_2d(8, 8),
            lambda: from_edge_list(6, [(0, 1, 1.0), (2, 3, 1.0)]),
        ],
    )
    def test_sweep_bit_identical(self, factory):
        g = factory()
        rhos = [1, 2, 5, 16, g.n + 5]
        scalar = compute_radii_sweep(g, rhos, backend="scalar")
        batched = compute_radii_sweep(g, rhos, backend="batched")
        for rho in rhos:
            assert np.array_equal(scalar[rho], batched[rho]), rho

    def test_njobs_slot_fanout(self):
        g = random_connected_graph(50, 120, seed=3)
        serial = compute_radii_sweep(g, [3, 8], backend="batched", n_jobs=1)
        fanned = compute_radii_sweep(g, [3, 8], backend="batched", n_jobs=3)
        for rho in (3, 8):
            assert np.array_equal(serial[rho], fanned[rho])

    def test_unknown_backend_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="registered backends"):
            compute_radii_sweep(g, [2], backend="quantum")


class TestTreeParity:
    @pytest.mark.parametrize("include_ties", [True, False])
    def test_batched_trees_match_per_ball_construction(self, include_ties):
        g = random_connected_graph(45, 110, seed=4, weight_high=20)
        sources = np.arange(g.n, dtype=np.int64)
        radii, trees = batched_ball_trees(
            g, sources, 8, include_ties=include_ties
        )
        for s, tree in zip(sources, trees):
            ball = ball_search(g, int(s), 8, include_ties=include_ties)
            ref = build_ball_tree(ball)
            assert radii[s] == ball.r_rho(8)
            assert tree.source == ref.source
            for field in (
                "vertices",
                "dist",
                "depth",
                "parent",
                "child_ptr",
                "child_idx",
            ):
                assert np.array_equal(
                    getattr(tree, field), getattr(ref, field)
                ), (s, field)


class TestPipelineParity:
    @pytest.mark.parametrize("heuristic", ["full", "greedy", "dp"])
    @pytest.mark.parametrize("include_ties", [True, False])
    def test_build_kr_graph_bit_identical(self, heuristic, include_ties):
        g = random_connected_graph(55, 130, seed=5, weight_high=25)
        a = build_kr_graph(
            g, 2, 7, heuristic=heuristic, include_ties=include_ties,
            backend="scalar",
        )
        b = build_kr_graph(
            g, 2, 7, heuristic=heuristic, include_ties=include_ties,
            backend="batched",
        )
        assert a.graph == b.graph  # identical shortcut edge sets
        assert np.array_equal(a.radii, b.radii)
        assert a.added_edges == b.added_edges
        assert a.new_edges == b.new_edges


class TestCountParity:
    def test_shortcut_counts_identical_across_backends(self):
        from repro.preprocess import count_shortcuts_sweep

        g = random_connected_graph(50, 120, seed=14, weight_high=20)
        kwargs = dict(ks=[1, 2], rhos=[3, 6], heuristics=("greedy", "dp", "full"))
        a = count_shortcuts_sweep(g, backend="scalar", **kwargs)
        b = count_shortcuts_sweep(g, backend="batched", **kwargs)
        assert a.totals == b.totals


class TestBackendRegistry:
    def test_builtins_present(self):
        assert {"scalar", "batched"} <= set(available_ball_backends())

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_ball_backend("batched", lambda *a, **k: [])

    def test_invalid_names_rejected(self):
        for bad in ("", "auto"):
            with pytest.raises(ValueError):
                register_ball_backend(bad, lambda *a, **k: [])

    def test_custom_backend_serves_pipeline(self):
        """A third-party kernel registers and serves build_kr_graph,
        falling back to generic radii/tree construction."""
        spec = register_ball_backend(
            "test-echo-scalar",
            get_ball_backend("scalar").fn,
            overwrite=True,
        )
        try:
            g = random_connected_graph(20, 45, seed=6)
            a = build_kr_graph(g, 2, 4, backend="test-echo-scalar")
            b = build_kr_graph(g, 2, 4, backend="scalar")
            assert a.graph == b.graph
            assert np.array_equal(a.radii, b.radii)
            assert spec.name in available_ball_backends()
        finally:
            import repro.preprocess.backends as reg

            reg._REGISTRY.pop("test-echo-scalar", None)


class TestSortedAdjacencyCache:
    def test_cache_returns_same_object(self):
        g = random_connected_graph(20, 50, seed=7)
        assert sort_adjacency_by_weight(g) is sort_adjacency_by_weight(g)

    def test_cache_is_per_graph(self):
        g1 = random_connected_graph(20, 50, seed=8)
        g2 = random_connected_graph(20, 50, seed=9)
        assert sort_adjacency_by_weight(g1) is not sort_adjacency_by_weight(g2)

    def test_cache_evicts_on_collection(self):
        import gc

        from repro.preprocess.ball import _SORTED_CACHE

        g = random_connected_graph(15, 35, seed=10)
        sort_adjacency_by_weight(g)
        key = id(g)
        assert key in _SORTED_CACHE
        del g
        gc.collect()
        assert key not in _SORTED_CACHE


@given(
    n=st.integers(5, 34),
    seed=st.integers(0, 10**6),
    rho=st.integers(1, 14),
    weight_high=st.integers(1, 12),
    include_ties=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_batched_scalar_parity_property(n, seed, rho, weight_high, include_ties):
    """Property: full-field parity on random weighted graphs (small
    weights force heavy distance-tie classes, the hardest case for the
    (dist, hops, id) settle-order reconstruction)."""
    g = random_connected_graph(n, 2 * n, seed=seed, weight_high=weight_high)
    sources = np.arange(g.n, dtype=np.int64)
    batched = batched_ball_search(g, sources, rho, include_ties=include_ties)
    for s, got in zip(sources, batched):
        ref = ball_search(g, int(s), rho, include_ties=include_ties)
        assert_balls_equal(ref, got, ctx=f"n={n} seed={seed} s={s}")
