"""Unit tests for the shortcut-count sweep (Tables 2/3 machinery)."""

import numpy as np
import pytest

from repro.graphs.generators import grid_2d
from repro.preprocess import (
    build_kr_graph,
    count_shortcuts_sweep,
    sample_sources,
)

from tests.helpers import random_connected_graph


class TestSampleSources:
    def test_all_when_none(self):
        assert sample_sources(5, None).tolist() == [0, 1, 2, 3, 4]

    def test_all_when_over(self):
        assert len(sample_sources(5, 10)) == 5

    def test_sampled_distinct_sorted(self):
        s = sample_sources(100, 10, seed=3)
        assert len(np.unique(s)) == 10
        assert (np.diff(s) > 0).all()

    def test_deterministic(self):
        assert np.array_equal(
            sample_sources(50, 7, seed=1), sample_sources(50, 7, seed=1)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            sample_sources(10, 0)


class TestSweep:
    def test_exact_matches_pipeline(self):
        """Full-sample sweep totals equal the pipeline's added_edges."""
        g = grid_2d(7, 7)
        counts = count_shortcuts_sweep(
            g, ks=(2, 3), rhos=(5, 10), heuristics=("greedy", "dp")
        )
        for k in (2, 3):
            for rho in (5, 10):
                for h in ("greedy", "dp"):
                    pre = build_kr_graph(g, k, rho, heuristic=h)
                    assert counts.totals[h][(k, rho)] == pre.added_edges

    def test_dp_le_greedy_everywhere(self):
        g = random_connected_graph(50, 120, seed=0, weighted=False)
        counts = count_shortcuts_sweep(g, ks=(2, 3), rhos=(5, 15))
        for key, greedy_total in counts.totals["greedy"].items():
            assert counts.totals["dp"][key] <= greedy_total

    def test_sampling_unbiased(self):
        """The n/|sample| scaling makes the estimator unbiased: its mean
        over seeds converges to the exact total (the per-source counts on
        a grid are highly skewed — only corners need shortcuts — so any
        single sample can be far off; the *average* cannot be)."""
        g = grid_2d(8, 8)
        exact = count_shortcuts_sweep(g, ks=(2,), rhos=(8,))
        truth = exact.totals["dp"][(2, 8)]
        assert truth > 0
        ests = [
            count_shortcuts_sweep(
                g, ks=(2,), rhos=(8,), num_sources=20, seed=seed
            ).totals["dp"][(2, 8)]
            for seed in range(30)
        ]
        assert 0.6 * truth <= np.mean(ests) <= 1.4 * truth

    def test_factor(self):
        g = grid_2d(6, 6)
        counts = count_shortcuts_sweep(g, ks=(2,), rhos=(6,))
        assert counts.factor("dp", 2, 6) == counts.totals["dp"][(2, 6)] / g.m

    def test_full_heuristic_counts_ball_interior(self):
        g = grid_2d(6, 6)
        counts = count_shortcuts_sweep(g, ks=(1,), rhos=(6,), heuristics=("full",))
        pre = build_kr_graph(g, 1, 6, heuristic="full")
        assert counts.totals["full"][(1, 6)] == pre.added_edges

    def test_njobs_parity(self):
        g = grid_2d(6, 6)
        a = count_shortcuts_sweep(g, ks=(2,), rhos=(5,), n_jobs=1)
        b = count_shortcuts_sweep(g, ks=(2,), rhos=(5,), n_jobs=2)
        assert a.totals == b.totals

    def test_validation(self):
        g = grid_2d(4, 4)
        with pytest.raises(ValueError):
            count_shortcuts_sweep(g, ks=(), rhos=(5,))
        with pytest.raises(ValueError):
            count_shortcuts_sweep(g, ks=(2,), rhos=(5,), heuristics=("nope",))
