"""Tests for the brute-force Definitions 2–4 and (k,ρ)-graph verifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edge_list
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_2d,
    path_graph,
    star_graph,
)
from repro.preprocess import (
    build_kr_graph,
    k_radii,
    k_radius,
    rho_nearest_distance,
    verify_kr_graph,
)

from tests.helpers import random_connected_graph


class TestKRadius:
    def test_path(self):
        """On a unit path the (k+1)-th hop is the nearest >k-hop vertex."""
        g = path_graph(10)
        assert k_radius(g, 0, 1) == 2.0
        assert k_radius(g, 0, 3) == 4.0
        assert k_radius(g, 5, 2) == 3.0

    def test_everything_within_k_is_inf(self):
        g = star_graph(6)
        assert k_radius(g, 0, 1) == float("inf")  # all leaves 1 hop away
        assert np.isfinite(k_radius(g, 1, 1))  # other leaves are 2 hops

    def test_complete_graph(self):
        g = complete_graph(5)
        assert k_radius(g, 0, 1) == float("inf")

    def test_weighted_minhop_convention(self):
        """d̂ counts hops on the *min-hop* shortest path: with a 2-hop
        path of total weight 2 and a direct edge of weight 2, the direct
        edge wins the hop count."""
        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        # vertex 2 is 1 hop from 0 (direct edge, same distance)
        assert k_radius(g, 0, 1) == float("inf")

    def test_k_zero(self):
        g = path_graph(3)
        # nearest vertex more than 0 hops away = nearest neighbor
        assert k_radius(g, 0, 0) == 1.0

    def test_k_radii_vectorizes(self):
        g = cycle_graph(8)
        arr = k_radii(g, 2)
        assert arr.shape == (8,)
        assert np.all(arr == 3.0)  # symmetric ring

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_radius(path_graph(3), 0, -1)


class TestRhoNearest:
    def test_self_counting(self):
        """r_1(v) = 0: the closest vertex to v is v (paper's ρ=1 rows)."""
        g = path_graph(5)
        assert rho_nearest_distance(g, 2, 1) == 0.0

    def test_path_values(self):
        g = path_graph(9)
        assert rho_nearest_distance(g, 4, 3) == 1.0
        assert rho_nearest_distance(g, 4, 5) == 2.0

    def test_rho_beyond_component(self):
        g = from_edge_list(4, [(0, 1, 1.0)])
        assert rho_nearest_distance(g, 0, 4) == 1.0  # component radius

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            rho_nearest_distance(path_graph(3), 0, 0)

    def test_matches_ball_search_r_rho(self):
        from repro.preprocess import ball_search

        g = random_connected_graph(30, 70, seed=3)
        for v in (0, 7, 19):
            ball = ball_search(g, v, 10)
            assert rho_nearest_distance(g, v, 10) == pytest.approx(ball.r_rho(10))


class TestVerifyKrGraph:
    @pytest.mark.parametrize("heuristic", ["full", "greedy", "dp"])
    @pytest.mark.parametrize("k,rho", [(1, 4), (2, 6), (3, 8)])
    def test_pipeline_output_verifies(self, heuristic, k, rho):
        """The central correctness claim of Section 4: after preprocessing,
        every vertex satisfies r(v) ≤ r̄_k(v) and |B(v, r(v))| ≥ ρ."""
        g = random_connected_graph(25, 55, seed=k * 10 + rho, weighted=True)
        kk = 1 if heuristic == "full" else k
        pre = build_kr_graph(g, kk, rho, heuristic=heuristic)
        report = verify_kr_graph(pre.graph, pre.radii, kk, rho)
        assert report.ok, (
            f"violations: radius={report.radius_violations} "
            f"ball={report.ball_violations}"
        )

    def test_detects_radius_violation(self):
        """Radii beyond r̄_k must be flagged (they break Thm 3.2)."""
        g = path_graph(8)
        radii = np.full(8, 100.0)  # far beyond the 1-radius of 2.0
        report = verify_kr_graph(g, radii, k=1, rho=2)
        assert report.radius_violations

    def test_detects_ball_violation(self):
        g = path_graph(8)
        radii = np.zeros(8)  # B(v, 0) = {v}, so rho=3 is violated
        report = verify_kr_graph(g, radii, k=1, rho=3)
        assert report.ball_violations

    def test_zero_radii_is_valid_1_1(self):
        g = grid_2d(3, 3)
        report = verify_kr_graph(g, np.zeros(9), k=1, rho=1)
        assert report.ok

    def test_shape_validation(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            verify_kr_graph(g, np.zeros(3), k=1, rho=1)

    def test_disconnected_no_false_positives(self):
        """The ball condition caps at the component size."""
        g = from_edge_list(5, [(0, 1, 1.0), (2, 3, 1.0)])
        radii = np.full(5, 1.0)
        report = verify_kr_graph(g, radii, k=2, rho=4)
        assert not report.ball_violations

    @given(seed=st.integers(0, 10**4), k=st.integers(1, 3), rho=st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_property(self, seed, k, rho):
        g = random_connected_graph(18, 40, seed=seed, weighted=True, weight_high=9)
        pre = build_kr_graph(g, k, rho, heuristic="dp")
        assert verify_kr_graph(pre.graph, pre.radii, k, rho).ok
