"""Unit + property tests for the greedy and DP shortcut heuristics."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import greedy_bad_tree, grid_2d, path_graph
from repro.preprocess import (
    ball_search,
    build_ball_tree,
    dp_count,
    dp_select,
    dp_table,
    full_select,
    greedy_count,
    greedy_select,
)

from tests.helpers import random_connected_graph


def make_tree(graph, source, rho, **kw):
    return build_ball_tree(ball_search(graph, source, rho, **kw))


def covered_within_k(tree, selected, k) -> bool:
    """Check the (k,ρ)-ball property: every tree node within k hops of the
    source using tree edges + shortcuts from the source."""
    hop = np.full(len(tree), np.iinfo(np.int64).max)
    hop[0] = 0
    sel = set(int(s) for s in selected)
    for i in range(1, len(tree)):
        via_parent = hop[tree.parent[i]] + 1
        hop[i] = 1 if i in sel else via_parent
    return bool((hop <= k).all())


class TestGreedy:
    def test_selects_depth_ki_plus_1(self):
        tree = make_tree(path_graph(12), 0, 12)
        sel = greedy_select(tree, 3)
        assert tree.depth[sel].tolist() == [4, 7, 10]

    def test_count_matches_select(self):
        g = random_connected_graph(50, 120, seed=0)
        tree = make_tree(g, 0, 30)
        for k in (1, 2, 3, 4):
            assert greedy_count(tree, k) == len(greedy_select(tree, k))

    def test_coverage(self):
        g = random_connected_graph(60, 130, seed=1)
        tree = make_tree(g, 0, 40)
        for k in (1, 2, 3):
            assert covered_within_k(tree, greedy_select(tree, k), k)

    def test_shallow_tree_needs_nothing(self):
        tree = make_tree(grid_2d(3, 3), 4, 9)  # depth <= 2
        assert greedy_count(tree, 2) == 0

    def test_invalid_k(self):
        tree = make_tree(path_graph(3), 0, 3)
        with pytest.raises(ValueError):
            greedy_count(tree, 0)
        with pytest.raises(ValueError):
            greedy_select(tree, 0)


class TestDP:
    def test_count_matches_select(self):
        g = random_connected_graph(50, 120, seed=2)
        tree = make_tree(g, 0, 30)
        for k in (1, 2, 3, 4):
            assert dp_count(tree, k) == len(dp_select(tree, k))

    def test_coverage(self):
        g = random_connected_graph(60, 130, seed=3)
        tree = make_tree(g, 0, 40)
        for k in (1, 2, 3):
            assert covered_within_k(tree, dp_select(tree, k), k)

    def test_never_worse_than_greedy(self):
        for seed in range(5):
            g = random_connected_graph(60, 140, seed=seed)
            tree = make_tree(g, 0, 35)
            for k in (1, 2, 3, 4):
                assert dp_count(tree, k) <= greedy_count(tree, k)

    def test_adversarial_tree(self):
        """§4.2.1's example: greedy adds ~leaves edges, DP adds one."""
        g = greedy_bad_tree(k=3, leaves=25)
        tree = make_tree(g, 0, g.n)
        assert greedy_count(tree, 3) == 25
        assert dp_count(tree, 3) == 1
        sel = dp_select(tree, 3)
        assert len(sel) == 1
        assert tree.depth[sel[0]] <= 3

    def test_chain(self):
        """Chain of length L needs ceil((L-k)/k) shortcuts for k-hop cover
        ... DP must match the closed form."""
        for L, k in [(10, 2), (10, 3), (7, 1), (12, 4)]:
            tree = make_tree(path_graph(L + 1), 0, L + 1)
            expect = max(0, -(-(L - k) // k))  # ceil((L-k)/k)
            assert dp_count(tree, k) == expect

    def test_select_realizes_count_optimum(self):
        """Regression pin for the dead child_sum1 removal: on every
        family, dp_select must still emit exactly dp_count's optimum
        number of shortcuts, and they must cover within k."""
        graphs = [
            path_graph(20),
            grid_2d(6, 6),
            greedy_bad_tree(k=3, leaves=15),
            random_connected_graph(50, 120, seed=9),
            random_connected_graph(50, 120, seed=10, weight_high=2),
        ]
        for g in graphs:
            tree = make_tree(g, 0, min(30, g.n))
            for k in (1, 2, 3, 4):
                sel = dp_select(tree, k)
                assert len(sel) == dp_count(tree, k)
                assert covered_within_k(tree, sel, k)

    def test_table_shape_and_row0(self):
        tree = make_tree(path_graph(5), 0, 5)
        F = dp_table(tree, 2)
        assert F.shape == (5, 3)
        assert (F[0] == 0).all()

    def test_invalid_k(self):
        tree = make_tree(path_graph(3), 0, 3)
        with pytest.raises(ValueError):
            dp_count(tree, 0)


class TestDPOptimality:
    """DP vs exhaustive search over all shortcut subsets on small trees."""

    @staticmethod
    def brute_force_optimum(tree, k) -> int:
        nodes = list(range(1, len(tree)))
        for size in range(0, len(nodes) + 1):
            for subset in itertools.combinations(nodes, size):
                if covered_within_k(tree, subset, k):
                    return size
        return len(nodes)

    @given(n=st.integers(4, 12), seed=st.integers(0, 10**5), k=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, n, seed, k):
        g = random_connected_graph(n, int(1.5 * n), seed=seed, weight_high=6)
        tree = make_tree(g, 0, n)
        assert dp_count(tree, k) == self.brute_force_optimum(tree, k)


class TestFullSelect:
    def test_selects_depth_ge_2(self):
        g = random_connected_graph(40, 90, seed=4)
        tree = make_tree(g, 0, 25)
        sel = full_select(tree)
        assert set(sel.tolist()) == set(np.flatnonzero(tree.depth >= 2).tolist())

    def test_coverage_k1(self):
        g = random_connected_graph(40, 90, seed=5)
        tree = make_tree(g, 0, 25)
        assert covered_within_k(tree, full_select(tree), 1)

    def test_invalid_k(self):
        tree = make_tree(path_graph(3), 0, 3)
        with pytest.raises(ValueError):
            full_select(tree, 0)
