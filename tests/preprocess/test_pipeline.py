"""End-to-end preprocessing invariants (the heart of the reproduction).

After ``build_kr_graph(g, k, ρ)``:
* all pairwise distances are unchanged,
* Radius-Stepping with the returned radii takes ≤ k+2 substeps per step
  (Theorem 3.2) and ≤ ⌈n/ρ⌉(1+⌈log₂ ρL⌉) steps (Theorem 3.3),
* every ball member is within k hops (the (k,ρ)-graph property).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import max_steps_bound, max_substeps_bound
from repro.core import dijkstra, dijkstra_minhop, radius_stepping
from repro.graphs.generators import grid_2d
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_kr_graph

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def weighted_grid():
    return random_integer_weights(grid_2d(12, 12), low=1, high=40, seed=0)


class TestDistancePreservation:
    @pytest.mark.parametrize("heuristic", ["full", "greedy", "dp"])
    def test_distances_unchanged(self, weighted_grid, heuristic):
        g = weighted_grid
        pre = build_kr_graph(g, 2, 10, heuristic=heuristic)
        for src in (0, 77):
            assert np.allclose(
                dijkstra(pre.graph, src).dist, dijkstra(g, src).dist
            )


class TestTheoremBounds:
    @pytest.mark.parametrize("heuristic", ["full", "greedy", "dp"])
    @pytest.mark.parametrize("k,rho", [(1, 4), (2, 8), (3, 16)])
    def test_substeps_and_steps(self, weighted_grid, heuristic, k, rho):
        g = weighted_grid
        pre = build_kr_graph(g, k, rho, heuristic=heuristic)
        k_eff = 1 if heuristic == "full" else k
        sub_bound = max_substeps_bound(k_eff)
        step_bound = max_steps_bound(pre.graph.n, rho, pre.graph.max_weight)
        for src in (0, 60, 143):
            res = radius_stepping(pre.graph, src, pre.radii)
            assert res.max_substeps <= sub_bound
            assert res.steps <= step_bound

    @given(
        n=st.integers(10, 40),
        seed=st.integers(0, 10**5),
        k=st.integers(1, 3),
        rho=st.integers(2, 12),
    )
    @settings(max_examples=20, deadline=None)
    def test_bounds_property(self, n, seed, k, rho):
        g = random_connected_graph(n, 2 * n, seed=seed, weight_high=16)
        pre = build_kr_graph(g, k, rho, heuristic="dp")
        res = radius_stepping(pre.graph, 0, pre.radii)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)
        assert res.max_substeps <= max_substeps_bound(k)
        assert res.steps <= max_steps_bound(
            pre.graph.n, rho, pre.graph.max_weight
        )


class TestKRhoProperty:
    def test_ball_members_within_k_hops(self, weighted_grid):
        """The direct (k,ρ)-graph check: every vertex within distance
        r_ρ(v) of v has min-hop distance ≤ k in the augmented graph."""
        g = weighted_grid
        k, rho = 2, 8
        pre = build_kr_graph(g, k, rho, heuristic="dp")
        for v in range(0, g.n, 13):
            dist, hops, _ = dijkstra_minhop(pre.graph, v)
            ball = dist <= pre.radii[v]
            assert int(ball.sum()) >= rho
            assert (hops[ball] <= k).all()


class TestAccounting:
    def test_full_adds_most(self, weighted_grid):
        g = weighted_grid
        full = build_kr_graph(g, 2, 10, heuristic="full")
        greedy = build_kr_graph(g, 2, 10, heuristic="greedy")
        dp = build_kr_graph(g, 2, 10, heuristic="dp")
        assert dp.added_edges <= greedy.added_edges <= full.added_edges

    def test_new_edges_le_added(self, weighted_grid):
        pre = build_kr_graph(weighted_grid, 2, 10, heuristic="dp")
        assert pre.new_edges <= pre.added_edges
        assert pre.edge_factor >= 0

    def test_rho_1_adds_nothing(self, weighted_grid):
        pre = build_kr_graph(weighted_grid, 1, 1, heuristic="full")
        assert pre.added_edges == 0
        assert np.array_equal(pre.radii, np.zeros(weighted_grid.n))

    def test_steps_independent_of_k(self, weighted_grid):
        """§5.3: the step count depends only on ρ, never on k."""
        g = weighted_grid
        counts = []
        for k in (1, 2, 4):
            pre = build_kr_graph(g, k, 12, heuristic="dp")
            counts.append(radius_stepping(pre.graph, 5, pre.radii).steps)
        assert len(set(counts)) == 1


class TestValidation:
    def test_bad_heuristic(self, weighted_grid):
        with pytest.raises(ValueError, match="heuristic"):
            build_kr_graph(weighted_grid, 2, 5, heuristic="magic")

    def test_bad_k_rho(self, weighted_grid):
        with pytest.raises(ValueError):
            build_kr_graph(weighted_grid, 0, 5)
        with pytest.raises(ValueError):
            build_kr_graph(weighted_grid, 2, 0)

    def test_njobs_parity(self):
        g = random_connected_graph(30, 70, seed=9)
        a = build_kr_graph(g, 2, 6, heuristic="dp", n_jobs=1)
        b = build_kr_graph(g, 2, 6, heuristic="dp", n_jobs=2)
        assert a.graph == b.graph
        assert np.array_equal(a.radii, b.radii)
