"""Unit tests for vertex radius computation."""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.graphs.generators import grid_2d, star_graph
from repro.preprocess import ball_search, compute_radii, compute_radii_sweep

from tests.helpers import random_connected_graph


class TestConvention:
    def test_r1_is_zero_everywhere(self):
        """The paper's self-counting convention (DESIGN.md §4 pin): ρ=1
        must make Radius-Stepping behave exactly like batched Dijkstra,
        which requires r_1 ≡ 0."""
        g = random_connected_graph(30, 70, seed=0)
        assert np.array_equal(compute_radii(g, 1), np.zeros(g.n))

    def test_r2_is_min_incident_weight(self):
        g = random_connected_graph(30, 70, seed=1)
        r2 = compute_radii(g, 2)
        for v in range(g.n):
            assert r2[v] == g.neighbor_weights(v).min()


class TestAgainstDijkstra:
    def test_rho_th_smallest_distance(self):
        g = random_connected_graph(40, 90, seed=2, weight_high=10**6)
        for rho in (1, 3, 10, 25):
            radii = compute_radii(g, rho)
            for v in range(0, g.n, 7):
                sorted_dist = np.sort(dijkstra(g, v).dist)
                assert radii[v] == sorted_dist[rho - 1]

    def test_rho_exceeding_n_gives_eccentricity(self):
        g = grid_2d(3, 3)
        radii = compute_radii(g, 99)
        ecc = np.array([dijkstra(g, v).dist.max() for v in range(g.n)])
        assert np.array_equal(radii, ecc)


class TestSweep:
    def test_consistent_with_individual(self):
        g = random_connected_graph(35, 80, seed=3)
        sweep = compute_radii_sweep(g, [1, 4, 9])
        for rho in (1, 4, 9):
            assert np.array_equal(sweep[rho], compute_radii(g, rho))

    def test_monotone_in_rho(self):
        g = random_connected_graph(35, 80, seed=4)
        sweep = compute_radii_sweep(g, [2, 5, 11, 20])
        assert (sweep[2] <= sweep[5]).all()
        assert (sweep[5] <= sweep[11]).all()
        assert (sweep[11] <= sweep[20]).all()

    def test_ball_property(self):
        """At least ρ vertices sit within r_ρ(v) of v (|B(v,r_ρ)| ≥ ρ,
        the Theorem 3.3 precondition)."""
        g = random_connected_graph(30, 70, seed=5)
        rho = 6
        radii = compute_radii(g, rho)
        for v in range(g.n):
            dist = dijkstra(g, v).dist
            assert np.sum(dist <= radii[v]) >= rho

    def test_empty_rhos_rejected(self):
        g = grid_2d(2, 2)
        with pytest.raises(ValueError):
            compute_radii_sweep(g, [])
        with pytest.raises(ValueError):
            compute_radii_sweep(g, [0, 3])

    def test_star_radii(self):
        g = star_graph(5)
        assert np.array_equal(compute_radii(g, 2), np.ones(6))
        # From a leaf, the 3rd-closest vertex is another leaf at distance 2.
        assert compute_radii(g, 3)[1] == 2.0


class TestParallel:
    def test_njobs_parity(self):
        g = random_connected_graph(40, 90, seed=6)
        serial = compute_radii_sweep(g, [2, 7])
        parallel = compute_radii_sweep(g, [2, 7], n_jobs=2)
        for rho in (2, 7):
            assert np.array_equal(serial[rho], parallel[rho])
