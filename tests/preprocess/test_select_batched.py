"""Parity + property tests for the forest-level selection engine.

The engine (`repro.preprocess.select_batched`) must reproduce the
per-tree walkers (`dp_select` / `greedy_select` / `full_select`) bit for
bit on every tree of every block — same selections, same ordering, same
dtypes — across all generator families, ρ-prefix sizes, zero-weight tie
classes, and ρ ≥ n, and the selections themselves must satisfy the
(k,ρ)-ball covering invariant they exist to establish.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.build import from_edge_list
from repro.graphs.generators import (
    greedy_bad_tree,
    grid_2d,
    path_graph,
    road_network,
    scale_free,
)
from repro.graphs.weights import random_integer_weights
from repro.preprocess import (
    ball_search,
    batched_select,
    batched_tree_block,
    block_from_trees,
    build_ball_tree,
    build_kr_graph,
    count_shortcuts_sweep,
    dp_count,
    dp_select,
    dp_table,
    forest_counts,
    forest_dp_tables,
    forest_select,
    forest_shortcuts,
    full_count,
    full_select,
    get_ball_backend,
    greedy_count,
    greedy_select,
)

from tests.helpers import random_connected_graph

HEURISTIC_FNS = {
    "dp": (dp_select, dp_count),
    "greedy": (greedy_select, greedy_count),
    "full": (full_select, full_count),
}


def zero_weight_tie_graph():
    return from_edge_list(
        7,
        [
            (0, 1, 0.0),
            (1, 2, 0.0),
            (2, 3, 1.0),
            (0, 4, 1.0),
            (4, 5, 0.0),
            (3, 5, 0.0),
            (5, 6, 2.0),
        ],
    )


def family_graphs():
    """One representative per generator family, ties included."""
    road, _ = road_network(120, seed=3)
    return {
        "path": path_graph(24),
        "grid": grid_2d(7, 7),
        "road": random_integer_weights(road, low=1, high=100, seed=4),
        "web": scale_free(100, attach=3, seed=9),
        "greedy_bad": greedy_bad_tree(k=3, leaves=12),
        "random": random_connected_graph(60, 150, seed=5),
        "tie_heavy": random_integer_weights(grid_2d(6, 6), low=1, high=2, seed=1),
        "zero_ties": zero_weight_tie_graph(),
    }


def scalar_block(graph, rho, *, include_ties=True):
    """Trees via the scalar reference route, stacked into a block."""
    trees = [
        build_ball_tree(
            ball_search(graph, s, rho, include_ties=include_ties)
        )
        for s in range(graph.n)
    ]
    return trees, block_from_trees(trees)


class TestForestParity:
    """Forest engine vs per-tree walkers, bit for bit."""

    @pytest.mark.parametrize("name", sorted(family_graphs()))
    @pytest.mark.parametrize("heuristic", ["dp", "greedy", "full"])
    def test_families(self, name, heuristic):
        g = family_graphs()[name]
        select, count = HEURISTIC_FNS[heuristic]
        for rho in (3, 8, g.n + 7):  # includes rho >= n
            trees, blk = scalar_block(g, rho)
            for k in (1, 2, 3):
                sels = forest_select(blk, heuristic, k)
                counts = forest_counts(blk, heuristic, k)
                assert len(sels) == len(trees)
                for i, tree in enumerate(trees):
                    ref = select(tree, k)
                    assert sels[i].dtype == ref.dtype
                    assert np.array_equal(ref, sels[i])
                    assert counts[i] == count(tree, k)

    def test_dp_tables_match_scalar(self):
        g = random_connected_graph(50, 120, seed=7)
        trees, blk = scalar_block(g, 12)
        for k in (1, 3):
            F, child_sum = forest_dp_tables(blk, k)
            assert F.shape == (len(blk), k + 1)
            for i, tree in enumerate(trees):
                lo, hi = blk.offsets[i], blk.offsets[i + 1]
                assert np.array_equal(dp_table(tree, k), F[lo:hi])

    def test_rho_prefix_sizes(self):
        """Selections on every prefix trim equal per-prefix tree walks."""
        g = random_integer_weights(grid_2d(8, 8), low=1, high=3, seed=2)
        balls = [ball_search(g, s, 20) for s in range(g.n)]
        trees = [build_ball_tree(b) for b in balls]
        blk = block_from_trees(trees)
        for rho in (1, 2, 5, 13):
            sizes = np.array([b.prefix_size(rho) for b in balls])
            sub = blk.trim(sizes)
            for k in (1, 2):
                sels = forest_select(sub, "dp", k)
                for i, ball in enumerate(balls):
                    ref = dp_select(build_ball_tree(ball, int(sizes[i])), k)
                    assert np.array_equal(ref, sels[i])

    def test_shortcut_triples_order(self):
        """forest_shortcuts equals the scalar per-tree concatenation."""
        g = random_connected_graph(40, 100, seed=11)
        trees, blk = scalar_block(g, 9)
        for heuristic in ("dp", "greedy", "full"):
            src, dst, w = forest_shortcuts(blk, heuristic, 2)
            srcs, dsts, ws = [], [], []
            for tree in trees:
                chosen = HEURISTIC_FNS[heuristic][0](tree, 2)
                srcs.append(np.full(len(chosen), tree.source, dtype=np.int64))
                dsts.append(tree.vertices[chosen])
                ws.append(tree.dist[chosen])
            assert np.array_equal(src, np.concatenate(srcs))
            assert np.array_equal(dst, np.concatenate(dsts))
            assert np.array_equal(w, np.concatenate(ws))

    def test_validation(self):
        _, blk = scalar_block(path_graph(5), 5)
        with pytest.raises(ValueError):
            forest_select(blk, "nope", 2)
        with pytest.raises(ValueError):
            forest_counts(blk, "nope", 2)
        with pytest.raises(ValueError):
            forest_select(blk, "dp", 0)
        with pytest.raises(ValueError):
            forest_counts(blk, "greedy", 0)

    def test_empty_block(self):
        blk = block_from_trees([])
        for heuristic in ("dp", "greedy", "full"):
            assert forest_select(blk, heuristic, 2) == []
            assert len(forest_counts(blk, heuristic, 2)) == 0
            src, dst, w = forest_shortcuts(blk, heuristic, 2)
            assert len(src) == len(dst) == len(w) == 0
        with pytest.raises(ValueError):
            forest_select(blk, "nope", 2)


class TestTreeBlock:
    def test_roundtrip(self):
        g = random_connected_graph(30, 70, seed=3)
        trees, blk = scalar_block(g, 8)
        assert blk.num_trees == len(trees)
        assert len(blk) == sum(len(t) for t in trees)
        for i in range(len(trees)):
            t0, t1 = trees[i], blk.tree(i)
            for f in ("vertices", "dist", "depth", "parent", "child_ptr", "child_idx"):
                assert np.array_equal(getattr(t0, f), getattr(t1, f))
            assert t0.source == t1.source

    def test_trim_matches_prefix_trees(self):
        g = random_connected_graph(30, 70, seed=4)
        balls = [ball_search(g, s, 12) for s in range(g.n)]
        blk = block_from_trees([build_ball_tree(b) for b in balls])
        sizes = np.maximum(1, blk.sizes() // 2)
        sub = blk.trim(sizes)
        for i, ball in enumerate(balls):
            ref = build_ball_tree(ball, int(sizes[i]))
            got = sub.tree(i)
            for f in ("vertices", "dist", "depth", "parent", "child_ptr", "child_idx"):
                assert np.array_equal(getattr(ref, f), getattr(got, f))

    def test_trim_validation(self):
        _, blk = scalar_block(path_graph(6), 6)
        with pytest.raises(ValueError):
            blk.trim(np.zeros(blk.num_trees, dtype=np.int64))
        with pytest.raises(ValueError):
            blk.trim(blk.sizes() + 1)
        with pytest.raises(ValueError):
            blk.trim(np.ones(blk.num_trees + 1, dtype=np.int64))

    @pytest.mark.parametrize("include_ties", [True, False])
    def test_batched_block_matches_scalar_route(self, include_ties):
        """batched_tree_block (direct slot-engine emission, multi-block)
        equals ball_search + build_ball_tree + block_from_trees."""
        g = random_integer_weights(grid_2d(7, 7), low=1, high=3, seed=6)
        sources = np.arange(g.n, dtype=np.int64)
        radii, blk = batched_tree_block(
            g, sources, 9, include_ties=include_ties, slot_block=11
        )
        trees = [
            build_ball_tree(
                ball_search(g, int(s), 9, include_ties=include_ties)
            )
            for s in sources
        ]
        ref = block_from_trees(trees)
        for f in ("sources", "offsets", "vertices", "dist", "depth", "parent"):
            assert np.array_equal(getattr(ref, f), getattr(blk, f))
        expect_radii = [
            ball_search(g, int(s), 9).r_rho(9) for s in sources
        ]
        assert np.array_equal(radii, np.array(expect_radii))


class TestBackendSelectDispatch:
    """select_fn / block_fn registry wiring and cross-backend parity."""

    def test_registry_fast_paths(self):
        batched = get_ball_backend("batched")
        scalar = get_ball_backend("scalar")
        assert batched.select_fn is not None
        assert batched.block_fn is not None
        assert scalar.select_fn is None
        assert scalar.block_fn is None

    @pytest.mark.parametrize("heuristic", ["dp", "greedy", "full"])
    @pytest.mark.parametrize("include_ties", [True, False])
    def test_compute_shortcuts_parity(self, heuristic, include_ties):
        g = random_connected_graph(70, 180, seed=8)
        sources = np.arange(g.n, dtype=np.int64)
        out_s = get_ball_backend("scalar").compute_shortcuts(
            g, sources, 7, 2, heuristic, include_ties=include_ties
        )
        out_b = get_ball_backend("batched").compute_shortcuts(
            g, sources, 7, 2, heuristic, include_ties=include_ties
        )
        for a, b in zip(out_s, out_b):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_compute_shortcuts_unknown_heuristic(self):
        g = path_graph(5)
        for backend in ("scalar", "batched"):
            with pytest.raises(ValueError):
                get_ball_backend(backend).compute_shortcuts(
                    g, np.arange(g.n), 3, 2, "nope"
                )

    def test_compute_tree_block_parity(self):
        g = random_connected_graph(40, 90, seed=9)
        sources = np.arange(g.n, dtype=np.int64)
        r_s, blk_s = get_ball_backend("scalar").compute_tree_block(
            g, sources, 6
        )
        r_b, blk_b = get_ball_backend("batched").compute_tree_block(
            g, sources, 6
        )
        assert np.array_equal(r_s, r_b)
        for f in ("sources", "offsets", "vertices", "dist", "depth", "parent"):
            assert np.array_equal(getattr(blk_s, f), getattr(blk_b, f))

    @pytest.mark.parametrize("heuristic", ["dp", "greedy", "full"])
    def test_build_kr_graph_backend_parity(self, heuristic):
        """End-to-end: the pipeline through select_fn equals the scalar
        per-tree walk route on every output."""
        g = family_graphs()["tie_heavy"]
        k = 1 if heuristic == "full" else 3
        pre_s = build_kr_graph(g, k, 8, heuristic=heuristic, backend="scalar")
        pre_b = build_kr_graph(g, k, 8, heuristic=heuristic, backend="batched")
        assert pre_s.graph == pre_b.graph
        assert np.array_equal(pre_s.radii, pre_b.radii)
        assert pre_s.added_edges == pre_b.added_edges
        assert pre_s.new_edges == pre_b.new_edges

    def test_batched_select_empty_sources(self):
        g = path_graph(6)
        radii, src, dst, w = batched_select(
            g, np.empty(0, dtype=np.int64), 3, 2, "dp"
        )
        assert len(radii) == len(src) == len(dst) == len(w) == 0

    def test_batched_select_validates_before_searching(self):
        g = path_graph(6)
        with pytest.raises(ValueError):
            batched_select(g, np.arange(g.n), 3, 2, "nope")
        with pytest.raises(ValueError):
            batched_select(g, np.arange(g.n), 3, 0, "dp")


class TestCountSweepParity:
    """The reworked count sweep (forest counts + hoisted full rule)."""

    @pytest.mark.parametrize("include_ties", [True, False])
    def test_matches_per_tree_reference(self, include_ties):
        g = random_integer_weights(grid_2d(7, 7), low=1, high=2, seed=3)
        ks, rhos = (1, 2, 3), (2, 6, 12)
        counts = count_shortcuts_sweep(
            g,
            ks=ks,
            rhos=rhos,
            heuristics=("greedy", "dp", "full"),
            include_ties=include_ties,
        )
        # Independent reference: the pre-forest per-tree walk.
        rho_max = max(rhos)
        expect = {
            h: {(k, r): 0 for k in ks for r in rhos}
            for h in ("greedy", "dp", "full")
        }
        for s in range(g.n):
            ball = ball_search(g, s, rho_max, include_ties=include_ties)
            for rho in rhos:
                t = (
                    ball.prefix_size(rho)
                    if include_ties
                    else min(rho, len(ball))
                )
                tree = build_ball_tree(ball, t)
                for k in ks:
                    expect["greedy"][(k, rho)] += greedy_count(tree, k)
                    expect["dp"][(k, rho)] += dp_count(tree, k)
                    expect["full"][(k, rho)] += full_count(tree)
        for h in expect:
            for key in expect[h]:
                assert counts.totals[h][key] == expect[h][key], (h, key)

    def test_scalar_backend_route(self):
        g = grid_2d(6, 6)
        a = count_shortcuts_sweep(g, ks=(2,), rhos=(5, 9), backend="scalar")
        b = count_shortcuts_sweep(g, ks=(2,), rhos=(5, 9), backend="batched")
        assert a.totals == b.totals


def covered_within_k(tree, selected, k) -> bool:
    """(k,ρ)-ball property: every tree node within k hops of the source
    using tree edges + the selected source shortcuts."""
    hop = np.full(len(tree), np.iinfo(np.int64).max)
    hop[0] = 0
    sel = set(int(s) for s in selected)
    for i in range(1, len(tree)):
        hop[i] = 1 if i in sel else hop[tree.parent[i]] + 1
    return bool((hop <= k).all())


class TestCoverageInvariant:
    @pytest.mark.parametrize("heuristic", ["dp", "greedy", "full"])
    def test_selected_shortcuts_cover(self, heuristic):
        """Applying the engine's selections brings every ball node within
        k hops of its source — on every family, every tree."""
        for name, g in family_graphs().items():
            trees, blk = scalar_block(g, 10)
            for k in (1, 2, 3):
                eff_k = 1 if heuristic == "full" else k
                sels = forest_select(blk, heuristic, k)
                for i, tree in enumerate(trees):
                    assert covered_within_k(tree, sels[i], eff_k), (
                        name,
                        heuristic,
                        k,
                        i,
                    )


@given(
    n=st.integers(6, 40),
    seed=st.integers(0, 10**6),
    rho=st.integers(1, 50),
    k=st.integers(1, 4),
    weight_high=st.integers(1, 3),
    include_ties=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_batched_select_property(n, seed, rho, k, weight_high, include_ties):
    """Random graphs, tiny weight ranges (heavy tie classes), random
    (k, ρ): the fused batched selection path stays bit-identical to the
    scalar walkers end to end."""
    g = random_connected_graph(
        n, int(1.8 * n), seed=seed, weight_high=weight_high
    )
    sources = np.arange(g.n, dtype=np.int64)
    for heuristic in ("dp", "greedy", "full"):
        got = batched_select(
            g, sources, rho, k, heuristic, include_ties=include_ties,
            slot_block=7,
        )
        ref = get_ball_backend("scalar").compute_shortcuts(
            g, sources, rho, k, heuristic, include_ties=include_ties
        )
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)
