"""Unit tests for the ball-local shortest-path tree."""

import numpy as np
import pytest

from repro.graphs.generators import grid_2d, path_graph
from repro.preprocess import ball_search, build_ball_tree

from tests.helpers import random_connected_graph


@pytest.fixture
def ball():
    g = random_connected_graph(50, 120, seed=0)
    return ball_search(g, 0, 20)


class TestBuild:
    def test_root_is_source(self, ball):
        tree = build_ball_tree(ball)
        assert tree.vertices[0] == ball.source
        assert tree.parent[0] == -1
        assert tree.depth[0] == 0

    def test_parent_precedes_child(self, ball):
        tree = build_ball_tree(ball)
        for i in range(1, len(tree)):
            assert tree.parent[i] < i

    def test_depth_consistent_with_parent(self, ball):
        tree = build_ball_tree(ball)
        for i in range(1, len(tree)):
            assert tree.depth[i] == tree.depth[tree.parent[i]] + 1

    def test_children_inverse_of_parent(self, ball):
        tree = build_ball_tree(ball)
        for i in range(len(tree)):
            for c in tree.children(i):
                assert tree.parent[c] == i
        total_children = sum(len(tree.children(i)) for i in range(len(tree)))
        assert total_children == len(tree) - 1

    def test_max_depth(self, ball):
        tree = build_ball_tree(ball)
        assert tree.max_depth == tree.depth.max()


class TestPrefix:
    def test_prefix_is_valid_tree(self, ball):
        for size in (1, 5, len(ball)):
            tree = build_ball_tree(ball, size)
            assert len(tree) == size
            for i in range(1, size):
                assert 0 <= tree.parent[i] < i

    def test_prefix_matches_smaller_search(self):
        """Tree on a prefix == tree from a fresh smaller-ρ search."""
        g = random_connected_graph(60, 140, seed=1, weight_high=10**6)
        big = ball_search(g, 0, 30, include_ties=False)
        small = ball_search(g, 0, 12, include_ties=False)
        t_big = build_ball_tree(big, 12)
        t_small = build_ball_tree(small)
        assert np.array_equal(t_big.vertices, t_small.vertices)
        assert np.array_equal(t_big.depth, t_small.depth)

    def test_invalid_size(self, ball):
        with pytest.raises(ValueError):
            build_ball_tree(ball, 0)
        with pytest.raises(ValueError):
            build_ball_tree(ball, len(ball) + 1)


class TestShapes:
    def test_path_tree_is_chain(self):
        g = path_graph(6)
        tree = build_ball_tree(ball_search(g, 0, 6))
        assert tree.depth.tolist() == [0, 1, 2, 3, 4, 5]

    def test_grid_center_tree(self):
        g = grid_2d(5, 5)
        tree = build_ball_tree(ball_search(g, 12, 25))
        assert tree.max_depth == 4  # Manhattan radius from center
