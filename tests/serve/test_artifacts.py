"""Artifact store: round-trip fidelity and integrity failure modes.

A serving process trusts an artifact with its routes, so every way a
bundle can lie — truncation, bit rot, version skew, wrong source graph,
missing fields — must raise a clear :class:`ArtifactError` subclass
instead of silently serving wrong answers.
"""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.preprocess import build_kr_graph
from repro.serve import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactGraphMismatchError,
    ArtifactVersionError,
    load_artifact,
    load_solver,
    save_artifact,
)

from tests.helpers import random_connected_graph

K, RHO = 2, 8


@pytest.fixture(scope="module")
def case():
    g = random_connected_graph(70, 160, seed=21, weight_high=40)
    return g, build_kr_graph(g, K, RHO, heuristic="dp")


@pytest.fixture()
def saved(case, tmp_path):
    g, pre = case
    path = tmp_path / "kr.npz"
    save_artifact(path, pre)
    return g, pre, path


class TestRoundTrip:
    def test_every_field_restored(self, saved):
        g, pre, path = saved
        back = load_artifact(path)
        assert back.graph == pre.graph
        assert np.array_equal(back.radii, pre.radii)
        assert (back.k, back.rho, back.heuristic) == (pre.k, pre.rho, pre.heuristic)
        assert back.added_edges == pre.added_edges
        assert back.new_edges == pre.new_edges
        assert back.source_hash == pre.source_hash == g.content_hash()

    def test_round_trips_through_solver_facade(self, saved):
        """The whole point: a warm-started facade answers exactly like
        the one that paid for preprocessing."""
        g, pre, path = saved
        cold = PreprocessedSSSP.from_preprocessed(pre)
        warm = PreprocessedSSSP.from_preprocessed(load_artifact(path))
        for s in (0, 13, 42):
            a, b = cold.solve(s), warm.solve(s)
            assert np.array_equal(a.dist, b.dist)
            assert (a.steps, a.substeps) == (b.steps, b.substeps)
            assert np.array_equal(a.dist, dijkstra(g, s).dist)

    def test_load_solver_one_call(self, saved):
        g, _pre, path = saved
        sp = load_solver(path, expect_graph=g)
        assert np.array_equal(sp.solve(7).dist, dijkstra(g, 7).dist)
        assert sp.queries_answered == 1

    def test_exact_path_no_suffix_appended(self, case, tmp_path):
        _g, pre = case
        path = tmp_path / "bundle.artifact"  # no .npz suffix
        assert save_artifact(path, pre) == path
        assert path.exists()
        assert load_artifact(path).graph == pre.graph

    def test_preprocess_result_save_hook(self, case, tmp_path):
        """PreprocessResult.save is the pipeline-side export hook."""
        _g, pre = case
        path = tmp_path / "hook.npz"
        pre.save(path)
        assert load_artifact(path).graph == pre.graph

    def test_expect_graph_accepts_the_right_graph(self, saved):
        g, _pre, path = saved
        load_artifact(path, expect_graph=g)  # must not raise


class TestGraphMismatch:
    def test_different_weights_rejected(self, saved, tmp_path):
        g, _pre, path = saved
        from repro.graphs.build import reweighted

        other = reweighted(g, np.asarray(g.weights) + 1.0)
        with pytest.raises(ArtifactGraphMismatchError, match="different graph"):
            load_artifact(path, expect_graph=other)

    def test_different_topology_rejected(self, saved):
        _g, _pre, path = saved
        other = random_connected_graph(70, 160, seed=99)
        with pytest.raises(ArtifactGraphMismatchError):
            load_solver(path, expect_graph=other)

    def test_mismatch_is_an_artifact_error(self, saved):
        """One except-clause catches every artifact failure mode."""
        _g, _pre, path = saved
        other = random_connected_graph(10, 20, seed=1)
        with pytest.raises(ArtifactError):
            load_artifact(path, expect_graph=other)


class TestVersionMismatch:
    def _resave_with(self, path, **overrides):
        with np.load(path, allow_pickle=False) as npz:
            fields = {name: npz[name] for name in npz.files}
        fields.update(overrides)
        with open(path, "wb") as fh:
            np.savez(fh, **fields)

    def test_future_version_rejected(self, saved):
        _g, _pre, path = saved
        self._resave_with(path, version=np.int64(ARTIFACT_VERSION + 1))
        with pytest.raises(ArtifactVersionError, match="re-run preprocessing"):
            load_artifact(path)

    def test_missing_version_is_corrupt(self, saved):
        _g, _pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files if n != "version"}
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="version"):
            load_artifact(path)

    def test_wrong_format_magic_rejected(self, saved):
        _g, _pre, path = saved
        self._resave_with(path, format="some-other-format")
        with pytest.raises(ArtifactCorruptError, match=ARTIFACT_FORMAT):
            load_artifact(path)


class TestVersion1ForwardCompat:
    """Version-1 bundles (written before ``preferred_engine`` existed)
    must keep loading: the checksum verifies against the v1 meta layout
    and ``engine="auto"`` falls back to the static default."""

    @staticmethod
    def _downgrade_to_v1(path):
        """Rewrite a saved bundle as a faithful version-1 artifact: drop
        every later-version field, stamp version 1, and recompute the
        digest over the six-field v1 meta tuple (what the v1 writer
        produced)."""
        from repro.serve.artifacts import _ARRAY_FIELDS, _payload_hash

        later = {
            "preferred_engine",
            "reorder",
            "locality_before",
            "locality_after",
            "perm",
        }
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files if n not in later}
        fields["version"] = np.int64(1)
        meta = (
            int(fields["k"]),
            int(fields["rho"]),
            str(fields["heuristic"]),
            int(fields["added_edges"]),
            int(fields["new_edges"]),
            str(fields["source_hash"]),
        )
        fields["payload_hash"] = _payload_hash(
            {n: fields[n] for n in _ARRAY_FIELDS}, meta
        )
        with open(path, "wb") as fh:
            np.savez(fh, **fields)

    def test_v1_bundle_loads_with_empty_preferred_engine(self, saved):
        g, pre, path = saved
        self._downgrade_to_v1(path)
        back = load_artifact(path, expect_graph=g)
        assert back.preferred_engine == ""
        assert back.graph == pre.graph
        assert np.array_equal(back.radii, pre.radii)

    def test_v1_bundle_auto_resolves_to_static_default(self, saved):
        g, _pre, path = saved
        self._downgrade_to_v1(path)
        sp = load_solver(path, expect_graph=g)
        assert sp.resolve_engine("auto") == "vectorized"
        assert np.array_equal(sp.solve(5).dist, dijkstra(g, 5).dist)

    def test_v1_bundle_through_routing_service_auto(self, saved):
        from repro.serve import RoutingService

        g, _pre, path = saved
        self._downgrade_to_v1(path)
        svc = RoutingService.from_artifact(path, expect_graph=g, engine="auto")
        assert svc.stats()["engine"] == "vectorized"
        assert svc.stats()["preferred_engine"] == ""
        assert svc.route(0, 13).distance == dijkstra(g, 0).dist[13]

    def test_v1_checksum_still_enforced(self, saved):
        """The lenient version gate must not weaken integrity: tampering
        with a v1 bundle still trips its (v1-layout) checksum."""
        _g, _pre, path = saved
        self._downgrade_to_v1(path)
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files}
        radii = fields["radii"].copy()
        radii[0] += 1.0
        fields["radii"] = radii
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path)


class TestPreferredEngine:
    """Version-2 artifacts carry the calibrated winner end to end."""

    def test_round_trips_preferred_engine(self, case, tmp_path):
        import dataclasses

        _g, pre = case
        stamped = dataclasses.replace(pre, preferred_engine="rho")
        path = tmp_path / "stamped.npz"
        save_artifact(path, stamped)
        back = load_artifact(path)
        assert back.preferred_engine == "rho"

    def test_auto_resolves_to_stored_winner(self, case, tmp_path):
        import dataclasses

        g, pre = case
        stamped = dataclasses.replace(pre, preferred_engine="delta-star")
        path = tmp_path / "stamped.npz"
        save_artifact(path, stamped)
        sp = load_solver(path, expect_graph=g)
        assert sp.resolve_engine("auto") == "delta-star"
        # explicit engine names always override the stored winner
        assert sp.resolve_engine("dijkstra") == "dijkstra"
        assert np.array_equal(sp.solve(3).dist, dijkstra(g, 3).dist)

    def test_unregistered_winner_falls_back(self, case):
        import dataclasses

        _g, pre = case
        stamped = dataclasses.replace(
            pre, preferred_engine="engine-from-the-future"
        )
        sp = PreprocessedSSSP.from_preprocessed(stamped)
        assert sp.resolve_engine("auto") == "vectorized"

    def test_calibrated_build_stamps_a_registered_engine(self):
        from repro.engine import available_engines

        g = random_connected_graph(40, 90, seed=8)
        pre = build_kr_graph(
            g, 1, 4, heuristic="full", calibrate_engine=True,
            calibration_budget=0.2,
        )
        assert pre.preferred_engine in available_engines()

    def test_service_stats_surface_engines(self, case, tmp_path):
        import dataclasses

        from repro.engine import available_engines
        from repro.serve import RoutingService

        g, pre = case
        stamped = dataclasses.replace(pre, preferred_engine="rho")
        path = tmp_path / "stamped.npz"
        save_artifact(path, stamped)
        svc = RoutingService.from_artifact(path, expect_graph=g)
        stats = svc.stats()
        assert stats["engine"] == "rho"  # planner resolved "auto" to it
        assert stats["preferred_engine"] == "rho"
        assert set(stats["engines"]) == set(available_engines())
        assert all(isinstance(d, str) for d in stats["engines"].values())


class TestVersion3Reorder:
    """Version-3 bundles carry the locality permutation; earlier
    versions keep loading with the identity mapping."""

    @pytest.fixture(scope="class")
    def reordered(self, case):
        g, _pre = case
        return g, build_kr_graph(g, K, RHO, heuristic="dp", reorder="rcm")

    @staticmethod
    def _rewrite(path, fields):
        with open(path, "wb") as fh:
            np.savez(fh, **fields)

    @staticmethod
    def _load_fields(path):
        with np.load(path, allow_pickle=False) as npz:
            return {n: npz[n] for n in npz.files}

    @classmethod
    def _restamp_v3_hash(cls, path, fields):
        """Recompute a self-consistent v3 digest (keyless checksum — a
        determined writer can always do this) so loads reach the
        structural perm validation instead of stopping at the checksum."""
        from repro.serve.artifacts import _ARRAY_FIELDS_V3, _payload_hash

        meta = (
            int(fields["k"]),
            int(fields["rho"]),
            str(fields["heuristic"]),
            int(fields["added_edges"]),
            int(fields["new_edges"]),
            str(fields["source_hash"]),
            str(fields["preferred_engine"]),
            str(fields["reorder"]),
            float(fields["locality_before"]),
            float(fields["locality_after"]),
        )
        fields["payload_hash"] = _payload_hash(
            {n: fields[n] for n in _ARRAY_FIELDS_V3 if n in fields},
            meta,
            tuple(n for n in _ARRAY_FIELDS_V3 if n in fields),
        )
        cls._rewrite(path, fields)

    @staticmethod
    def _downgrade_to_v2(path):
        """Rewrite a saved bundle as a faithful version-2 artifact:
        drop the v3 fields, stamp version 2, recompute the v2 digest."""
        from repro.serve.artifacts import _ARRAY_FIELDS, _payload_hash

        v3_only = {"reorder", "locality_before", "locality_after", "perm"}
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files if n not in v3_only}
        fields["version"] = np.int64(2)
        meta = (
            int(fields["k"]),
            int(fields["rho"]),
            str(fields["heuristic"]),
            int(fields["added_edges"]),
            int(fields["new_edges"]),
            str(fields["source_hash"]),
            str(fields["preferred_engine"]),
        )
        fields["payload_hash"] = _payload_hash(
            {n: fields[n] for n in _ARRAY_FIELDS}, meta
        )
        with open(path, "wb") as fh:
            np.savez(fh, **fields)

    def test_v3_round_trips_perm_and_locality(self, reordered, tmp_path):
        g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        back = load_artifact(path, expect_graph=g)
        assert back.reorder == "rcm"
        assert np.array_equal(back.perm, pre.perm)
        assert back.locality_before == pre.locality_before
        assert back.locality_after == pre.locality_after
        assert back.graph == pre.graph

    def test_identity_perm_collapses_on_load(self, saved):
        """A natural-order bundle stores the identity perm but loads
        with ``perm=None`` so serving skips the translation layer."""
        _g, _pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            assert "perm" in npz.files  # v3 always materializes it
        back = load_artifact(path)
        assert back.perm is None
        assert back.reorder == "natural"

    def test_reordered_artifact_serves_input_ids(self, reordered, tmp_path):
        g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        for mmap in (False, True):
            sp = load_solver(path, expect_graph=g, mmap=mmap)
            for s in (0, 13, 42):
                assert np.array_equal(sp.solve(s).dist, dijkstra(g, s).dist)

    def test_v2_bundle_loads_with_identity_perm(self, saved):
        g, pre, path = saved
        self._downgrade_to_v2(path)
        back = load_artifact(path, expect_graph=g)
        assert back.perm is None
        assert back.reorder == "natural"
        assert np.isnan(back.locality_before)
        assert back.graph == pre.graph

    def test_v2_checksum_still_enforced(self, saved):
        _g, _pre, path = saved
        self._downgrade_to_v2(path)
        fields = self._load_fields(path)
        radii = fields["radii"].copy()
        radii[0] += 1.0
        fields["radii"] = radii
        self._rewrite(path, fields)
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path)

    def test_missing_perm_is_corrupt(self, reordered, tmp_path):
        _g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        fields = {
            n: a for n, a in self._load_fields(path).items() if n != "perm"
        }
        self._rewrite(path, fields)
        with pytest.raises(ArtifactCorruptError, match="perm"):
            load_artifact(path)

    def test_tampered_perm_fails_checksum(self, reordered, tmp_path):
        _g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        fields = self._load_fields(path)
        perm = fields["perm"].copy()
        perm[0], perm[1] = perm[1], perm[0]
        fields["perm"] = perm
        self._rewrite(path, fields)
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path)

    def test_non_permutation_perm_rejected(self, reordered, tmp_path):
        """A checksum-consistent bundle whose perm has a duplicate id
        must still refuse to load — it would answer for wrong vertices."""
        _g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        fields = self._load_fields(path)
        perm = fields["perm"].copy()
        perm[1] = perm[0]  # duplicate → some vertex unreachable
        fields["perm"] = perm
        self._restamp_v3_hash(path, fields)
        with pytest.raises(ArtifactCorruptError, match="not a permutation"):
            load_artifact(path)

    def test_out_of_range_perm_rejected(self, reordered, tmp_path):
        _g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        fields = self._load_fields(path)
        perm = fields["perm"].copy()
        perm[0] = -1
        fields["perm"] = perm
        self._restamp_v3_hash(path, fields)
        with pytest.raises(ArtifactCorruptError, match="not a permutation"):
            load_artifact(path)

    def test_truncated_perm_rejected(self, reordered, tmp_path):
        _g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        fields = self._load_fields(path)
        fields["perm"] = fields["perm"][:-3].copy()
        self._restamp_v3_hash(path, fields)
        with pytest.raises(ArtifactCorruptError, match="not a permutation"):
            load_artifact(path)

    def test_mmap_reordered_round_trip(self, reordered, tmp_path):
        g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        mapped = load_artifact(path, expect_graph=g, mmap=True)
        assert np.array_equal(mapped.perm, pre.perm)
        assert mapped.graph == pre.graph

    def test_service_stats_surface_reorder(self, reordered, tmp_path):
        from repro.serve import RoutingService

        g, pre = reordered
        path = tmp_path / "re.npz"
        save_artifact(path, pre)
        svc = RoutingService.from_artifact(path, expect_graph=g)
        stats = svc.stats()
        assert stats["reorder"] == "rcm"
        assert stats["locality"]["after"] < stats["locality"]["before"]

    def test_v2_service_stats_locality_null(self, saved):
        """Pre-v3 artifacts surface ``null`` locality at GET /stats —
        nan would be invalid JSON."""
        import json

        from repro.serve import RoutingService

        g, _pre, path = saved
        self._downgrade_to_v2(path)
        svc = RoutingService.from_artifact(path, expect_graph=g)
        stats = svc.stats()
        assert stats["locality"] == {"before": None, "after": None}
        json.dumps(stats)  # must be JSON-serializable end to end


class TestCorruption:
    def test_truncated_file(self, saved):
        _g, _pre, path = saved
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptError, match="corrupt or truncated"):
            load_artifact(path)

    def test_flipped_payload_bytes(self, saved):
        """Bit rot in the middle of the bundle must not load."""
        _g, _pre, path = saved
        raw = bytearray(path.read_bytes())
        mid = len(raw) // 2
        for i in range(mid, mid + 64):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptError):
            load_artifact(path)

    def test_junk_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz bundle at all")
        with pytest.raises(ArtifactCorruptError):
            load_artifact(path)

    def test_missing_file_is_file_not_found(self, tmp_path):
        """A missing path is an ordinary FileNotFoundError, not a
        corruption claim."""
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "never-written.npz")

    def test_missing_required_field(self, saved):
        _g, _pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files if n != "radii"}
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="radii"):
            load_artifact(path)

    def test_tampered_array_fails_checksum(self, saved):
        """Altering stored arrays (without breaking the zip container)
        trips the payload checksum."""
        _g, pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files}
        radii = fields["radii"].copy()
        radii[0] += 1.0  # a subtly wrong radius would mis-schedule steps
        fields["radii"] = radii
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path)

    def test_checksum_consistent_but_invalid_arrays_rejected(self, saved):
        """A writer that recomputes the (keyless) checksum over bad CSR
        arrays still must not load: negative arc heads would gather
        wrong-but-valid neighbors via numpy wraparound."""
        from repro.serve.artifacts import _ARRAY_FIELDS_V3, _payload_hash

        _g, _pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files}
        indices = fields["indices"].copy()
        indices[0] = -3
        fields["indices"] = indices
        meta = tuple(
            f(fields[k])
            for f, k in zip(
                (int, int, str, int, int, str, str, str, float, float),
                (
                    "k",
                    "rho",
                    "heuristic",
                    "added_edges",
                    "new_edges",
                    "source_hash",
                    "preferred_engine",
                    "reorder",
                    "locality_before",
                    "locality_after",
                ),
            )
        )
        fields["payload_hash"] = _payload_hash(
            {n: fields[n] for n in _ARRAY_FIELDS_V3}, meta, _ARRAY_FIELDS_V3
        )
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="out-of-range"):
            load_artifact(path)

    def test_tampered_metadata_fails_checksum(self, saved):
        _g, _pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files}
        fields["k"] = np.int64(int(fields["k"]) + 3)
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path)


class TestMmap:
    """``load_artifact(..., mmap=True)``: the near-RAM-size warm-start
    knob — arrays stay disk-backed, every integrity check still runs."""

    @staticmethod
    def _is_mapped(arr: np.ndarray) -> bool:
        """The CSR constructor may wrap the memmap in a base-class view;
        mapped means a memmap sits somewhere on the base chain."""
        while arr is not None:
            if isinstance(arr, np.memmap):
                return True
            arr = arr.base
        return False

    def test_mmap_round_trip_bit_identical(self, saved):
        g, pre, path = saved
        eager = load_artifact(path, expect_graph=g)
        mapped = load_artifact(path, expect_graph=g, mmap=True)
        assert mapped.graph == eager.graph == pre.graph
        assert np.array_equal(mapped.radii, eager.radii)
        assert (mapped.k, mapped.rho, mapped.heuristic) == (
            eager.k,
            eager.rho,
            eager.heuristic,
        )
        assert mapped.source_hash == eager.source_hash

    def test_mmap_arrays_are_disk_backed(self, saved):
        _g, _pre, path = saved
        mapped = load_artifact(path, mmap=True)
        for arr in (
            mapped.graph.indptr,
            mapped.graph.indices,
            mapped.graph.weights,
            mapped.radii,
        ):
            assert self._is_mapped(np.asarray(arr)), "array was materialized"
        eager = load_artifact(path)
        for arr in (eager.graph.indptr, eager.graph.weights):
            assert not self._is_mapped(np.asarray(arr))

    def test_mmap_solver_answers_match(self, saved):
        """Queries over a memory-mapped bundle are bit-identical to the
        eagerly-loaded (and original) preprocessing."""
        g, _pre, path = saved
        sp = load_solver(path, expect_graph=g, mmap=True)
        for s in (0, 13, 42):
            assert np.array_equal(sp.solve(s).dist, dijkstra(g, s).dist)

    def test_mmap_checksum_still_verifies(self, saved):
        """mmap must not skip integrity: a tampered array trips the
        payload checksum exactly like the eager path."""
        _g, _pre, path = saved
        with np.load(path, allow_pickle=False) as npz:
            fields = {n: npz[n] for n in npz.files}
        radii = fields["radii"].copy()
        radii[0] += 1.0
        fields["radii"] = radii
        with open(path, "wb") as fh:
            np.savez(fh, **fields)
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_artifact(path, mmap=True)

    def test_mmap_truncated_file_rejected(self, saved):
        _g, _pre, path = saved
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptError):
            load_artifact(path, mmap=True)

    def test_mmap_graph_mismatch_rejected(self, saved):
        _g, _pre, path = saved
        other = random_connected_graph(70, 160, seed=99)
        with pytest.raises(ArtifactGraphMismatchError):
            load_artifact(path, expect_graph=other, mmap=True)

    def test_mmap_arrays_read_only(self, saved):
        _g, _pre, path = saved
        mapped = load_artifact(path, mmap=True)
        with pytest.raises(ValueError):
            mapped.graph.weights[0] = 99.0

    def test_routing_service_mmap_boot(self, saved):
        """RoutingService.from_artifact(..., mmap=True): the serving
        entry point for the knob."""
        from repro.serve import RoutingService

        g, _pre, path = saved
        svc = RoutingService.from_artifact(
            path, expect_graph=g, mmap=True, cache_capacity=8
        )
        route = svc.route(0, 13)
        assert route.distance == dijkstra(g, 0).dist[13]


class TestSourceHashHook:
    def test_build_kr_graph_records_source_hash(self):
        g = random_connected_graph(25, 60, seed=5)
        pre = build_kr_graph(g, 1, 4, heuristic="full")
        assert pre.source_hash == g.content_hash()

    def test_content_hash_is_content_only(self):
        g = random_connected_graph(25, 60, seed=5)
        h = random_connected_graph(25, 60, seed=5)
        assert g is not h
        assert g.content_hash() == h.content_hash()
        assert g.content_hash() != random_connected_graph(25, 60, seed=6).content_hash()
