"""Shard backends: the binary row codec, LocalBackend parity, and
RemoteBackend's transport semantics against a live loopback server.

The remote backend is the seam the whole multi-box story stands on, so
its contract is tested at the wire level: bit-identical rows across the
frame codec, X-Request-Id propagation into the shard's slow log, bounded
retry with recovery on a flaky 5xx shard, fast typed failure on a dead
port, 4xx re-raised as the error type the shard names (not as
unavailability), and — the shutdown-ordering bugfix — ``close()`` from
another thread interrupting an in-flight retry backoff immediately.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.solver import PreprocessedSSSP
from repro.obs.trace import trace_request
from repro.serve import (
    LocalBackend,
    QueryPlanner,
    RemoteBackend,
    RoutingHTTPServer,
    RoutingService,
    ShardBackend,
    ShardUnavailableError,
)
from repro.serve.backends import MAX_ROWS_PER_FETCH, decode_rows, encode_rows

from tests.helpers import random_connected_graph


# --------------------------------------------------------------------- #
# Binary row frame
# --------------------------------------------------------------------- #
class TestRowCodec:
    def test_round_trip_bit_identity(self):
        rng = np.random.default_rng(7)
        rows = [rng.random(23) * 1e6, np.arange(23, dtype=float)]
        rows[0][3] = np.inf  # unreachable vertices travel as raw inf
        mat = decode_rows(encode_rows(rows), expect_len=23)
        assert mat.shape == (2, 23)
        # bit-identical, not approximately equal
        for got, want in zip(mat, rows):
            assert got.tobytes() == np.asarray(want, dtype="<f8").tobytes()

    def test_decoded_rows_are_read_only(self):
        mat = decode_rows(encode_rows([np.zeros(4)]))
        with pytest.raises((ValueError, RuntimeError)):
            mat[0, 0] = 1.0

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError, match="at least one row"):
            encode_rows([])

    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_rows(b"RRO")

    def test_bad_magic(self):
        frame = bytearray(encode_rows([np.zeros(4)]))
        frame[:4] = b"JUNK"
        with pytest.raises(ValueError, match="magic"):
            decode_rows(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(encode_rows([np.zeros(4)]))
        frame[4] = 99
        with pytest.raises(ValueError, match="version"):
            decode_rows(bytes(frame))

    def test_size_mismatch(self):
        frame = encode_rows([np.zeros(4)])
        with pytest.raises(ValueError, match="bytes"):
            decode_rows(frame + b"\x00" * 8)

    def test_expect_len_mismatch(self):
        frame = encode_rows([np.zeros(4)])
        with pytest.raises(ValueError, match="different shard"):
            decode_rows(frame, expect_len=5)


# --------------------------------------------------------------------- #
# Local backend
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def small_graph():
    return random_connected_graph(50, 110, seed=3, weight_high=30)


@pytest.fixture(scope="module")
def planner(small_graph):
    solver = PreprocessedSSSP(small_graph, k=2, rho=8)
    return QueryPlanner(solver, capacity=16), solver


class TestLocalBackend:
    def test_protocol_conformance(self, planner):
        backend = LocalBackend(0, *planner)
        assert isinstance(backend, ShardBackend)

    def test_rows_match_planner(self, small_graph, planner):
        pl, solver = planner
        backend = LocalBackend(2, pl, solver)
        single = backend.source_row(5)
        assert np.array_equal(single, pl.distances(5))
        batch = backend.rows([1, 5, 9])
        assert len(batch) == 3
        for s, row in zip([1, 5, 9], batch):
            assert np.array_equal(row, pl.distances(s))

    def test_backend_stats_shape(self, planner):
        backend = LocalBackend(1, *planner)
        backend.source_row(0)
        st = backend.backend_stats()
        assert st["kind"] == "local"
        assert st["shard"] == 1
        assert st["endpoint"] is None
        assert st["healthy"] is True
        assert st["consecutive_failures"] == 0
        assert st["failures_total"] == 0
        assert st["row_fetches"] >= 1
        assert st["row_fetch_p50_ms"] is not None

    def test_healthz(self, planner):
        backend = LocalBackend(0, *planner)
        assert backend.healthz()["status"] == "ok"


# --------------------------------------------------------------------- #
# Remote backend against a live loopback server
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def shard_server(small_graph):
    """A shard-shaped server: the whole graph as 'shard 0'."""
    service = RoutingService(small_graph, k=2, rho=8, cache_capacity=32)
    with RoutingHTTPServer(service, slow_ms=0.0) as server:
        yield service, server


def _backend(server, **kw):
    kw.setdefault("shard", 0)
    kw.setdefault("timeout", 5.0)
    return RemoteBackend(server.url, **kw)


class TestRemoteBackend:
    def test_protocol_conformance(self, shard_server):
        _svc, server = shard_server
        backend = _backend(server)
        try:
            assert isinstance(backend, ShardBackend)
        finally:
            backend.close()

    def test_source_row_bit_identical(self, small_graph, shard_server):
        service, server = shard_server
        backend = _backend(server, expect_n=small_graph.n)
        try:
            got = backend.source_row(7)
            want = service.distances(7)
            assert got.tobytes() == want.tobytes()
        finally:
            backend.close()

    def test_rows_batch_and_chunking(self, small_graph, shard_server):
        service, server = shard_server
        backend = _backend(server, expect_n=small_graph.n)
        try:
            # more sources than one fetch carries — forces chunking
            sources = list(range(0, small_graph.n, 1))[: MAX_ROWS_PER_FETCH + 3]
            rows = backend.rows(sources)
            assert len(rows) == len(sources)
            for s, row in zip(sources, rows):
                assert np.array_equal(row, service.distances(s))
            assert backend.rows([]) == []
        finally:
            backend.close()

    def test_route_parity(self, shard_server):
        service, server = shard_server
        backend = _backend(server)
        try:
            want = service.route(3, 41)
            got = backend.route(3, 41)
            assert got.distance == want.distance
            assert got.path == want.path
        finally:
            backend.close()

    def test_stats_and_healthz(self, shard_server):
        _svc, server = shard_server
        backend = _backend(server)
        try:
            st = backend.stats()
            assert st["shards"] == 1 and "engine" in st
            health = backend.healthz()
            assert health["ready"] is True and health["status"] == "ok"
        finally:
            backend.close()

    def test_request_id_propagates_to_shard_slow_log(self, shard_server):
        _svc, server = shard_server
        backend = _backend(server)
        try:
            with trace_request("stitch", request_id="front-end-req-42"):
                backend.source_row(11)
            entries = server.slow_log.dump()["entries"]
            assert any(e["request_id"] == "front-end-req-42" for e in entries)
        finally:
            backend.close()

    def test_4xx_raises_typed_error_not_unavailable(self, shard_server):
        _svc, server = shard_server
        backend = _backend(server, retries=0)
        try:
            with pytest.raises(ValueError, match="rejected"):
                backend.source_row(10_000)  # out of range -> shard's 400
            # the shard answered: that is not a liveness failure
            assert backend.healthy
            assert backend.backend_stats()["failures_total"] == 0
        finally:
            backend.close()

    def test_wrong_shard_frame_fails_without_retry(self, shard_server):
        _svc, server = shard_server
        # topology says this shard holds 9 vertices; the endpoint serves 50
        backend = _backend(server, retries=3, expect_n=9)
        try:
            with pytest.raises(ShardUnavailableError, match="different shard"):
                backend.source_row(1)
            st = backend.backend_stats()
            assert not backend.healthy
            # one failed cycle, no retry burn on a misconfiguration
            assert st["consecutive_failures"] == 1
            assert st["failures_total"] == 1
        finally:
            backend.close()

    def test_endpoint_validation(self):
        with pytest.raises(ValueError, match="http"):
            RemoteBackend("ftp://example:21", shard=0)
        with pytest.raises(ValueError, match="http"):
            RemoteBackend("http://example", shard=0)  # no port


class TestRemoteFailure:
    def _dead_port(self):
        """A port with nothing listening (bind-then-close)."""
        import socket

        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
        s.close()
        return port

    def test_dead_port_fails_fast_and_typed(self):
        port = self._dead_port()
        backend = RemoteBackend(
            f"http://127.0.0.1:{port}", shard=3, retries=1, backoff=0.01
        )
        try:
            t0 = time.perf_counter()
            with pytest.raises(ShardUnavailableError) as exc:
                backend.source_row(0)
            assert time.perf_counter() - t0 < 5.0
            assert exc.value.shard == 3
            assert f"127.0.0.1:{port}" in exc.value.endpoint
            st = backend.backend_stats()
            assert not backend.healthy
            assert st["consecutive_failures"] == 1
            assert st["failures_total"] == 2  # first attempt + one retry
            # healthz must report, not raise
            assert backend.healthz()["status"] == "unreachable"
        finally:
            backend.close()

    def test_retry_recovers_from_transient_5xx(self, small_graph):
        service = RoutingService(small_graph, k=2, rho=8)
        failures = {"left": 2}

        class Flaky:
            """Delegating surface whose distances fail twice, then heal."""

            def distances(self, source):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise RuntimeError("transient shard hiccup")
                return service.distances(source)

            def route(self, s, t):
                return service.route(s, t)

            def nearest(self, s, k):
                return service.nearest(s, k)

            def batch(self, queries):
                return service.batch(queries)

            def warm(self, sources):
                return service.warm(sources)

            def stats(self):
                return service.stats()

            def healthz(self):
                return service.healthz()

        with RoutingHTTPServer(Flaky()) as server:
            backend = RemoteBackend(
                server.url, shard=0, retries=3, backoff=0.01
            )
            try:
                row = backend.source_row(4)
                assert np.array_equal(row, service.distances(4))
                st = backend.backend_stats()
                assert backend.healthy  # recovered within the budget
                assert st["failures_total"] == 2
                assert st["consecutive_failures"] == 0
            finally:
                backend.close()

    def test_close_interrupts_retry_backoff(self):
        """The shutdown-ordering bugfix: close() from another thread wakes
        a request sleeping between retries immediately — total time far
        under the backoff budget (which here is tens of seconds)."""
        port = self._dead_port()
        backend = RemoteBackend(
            f"http://127.0.0.1:{port}",
            shard=0,
            retries=50,
            backoff=0.5,
            backoff_cap=0.5,
        )
        outcome = {}

        def request():
            t0 = time.perf_counter()
            try:
                backend.source_row(0)
                outcome["error"] = None
            except ShardUnavailableError as exc:
                outcome["error"] = exc
            outcome["elapsed"] = time.perf_counter() - t0

        worker = threading.Thread(target=request)
        worker.start()
        time.sleep(0.2)  # let it enter the retry loop
        t_close = time.perf_counter()
        backend.close()
        worker.join(timeout=5.0)
        assert not worker.is_alive(), "request thread stuck past close()"
        assert time.perf_counter() - t_close < 2.0
        assert outcome["elapsed"] < 3.0  # not the ~25s backoff budget
        assert isinstance(outcome["error"], ShardUnavailableError)

    def test_request_after_close_raises_immediately(self):
        port = self._dead_port()
        backend = RemoteBackend(f"http://127.0.0.1:{port}", shard=2)
        backend.close()
        t0 = time.perf_counter()
        with pytest.raises(ShardUnavailableError, match="closed"):
            backend.source_row(0)
        assert time.perf_counter() - t0 < 0.5
        backend.close()  # idempotent
