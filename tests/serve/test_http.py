"""HTTP front end: endpoints, error mapping, concurrency, shutdown.

Drives a live :class:`~repro.serve.http.RoutingHTTPServer` over loopback
with stdlib ``urllib`` clients.  The acceptance bar: a concurrent mixed
workload (8 threads × single-source + point-to-point + k-nearest) comes
back with zero errors and answers bit-identical to a serial
:class:`~repro.serve.planner.QueryPlanner`; request problems map to 4xx,
server-side failures to 5xx, and shutdown is graceful.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import dijkstra
from repro.serve import QueryPlanner, RoutingHTTPServer, RoutingService

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def stack():
    g = random_connected_graph(60, 140, seed=11, weight_high=30)
    service = RoutingService(g, k=2, rho=8, cache_capacity=32)
    with RoutingHTTPServer(service) as server:
        yield g, service, server


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _get_error(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            pytest.fail(f"expected an HTTP error, got 200: {resp.read()!r}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url: str, doc):
    data = json.dumps(doc).encode()
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def _post_error(url: str, raw: bytes):
    req = urllib.request.Request(
        url, data=raw, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=10):
            pytest.fail("expected an HTTP error")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, stack):
        _g, _svc, server = stack
        doc = _get(f"{server.url}/healthz")
        assert doc["status"] == "ok"
        # a single-graph service is the one-shard special case
        assert doc["shards"] == 1
        assert isinstance(doc["artifact_version"], int)

    def test_stats_topology(self, stack):
        g, _svc, server = stack
        doc = _get(f"{server.url}/stats")
        assert doc["shards"] == 1
        shards = doc["topology"]["shards"]
        assert len(shards) == 1
        assert shards[0]["vertices"] == g.n
        assert shards[0]["boundary"] == 0

    def test_index_lists_endpoints(self, stack):
        _g, _svc, server = stack
        doc = _get(server.url + "/")
        assert "GET /route/{s}/{t}" in doc["endpoints"]

    def test_stats(self, stack):
        _g, _svc, server = stack
        doc = _get(f"{server.url}/stats")
        assert doc["engine"]
        assert doc["capacity"] == 32
        assert doc["hits"] + doc["misses"] == doc["lookups"]
        assert "stripes" in doc and "single_flight_waits" in doc

    def test_distances_row(self, stack):
        g, _svc, server = stack
        doc = _get(f"{server.url}/distances/7")
        ref = dijkstra(g, 7).dist
        assert doc["source"] == 7 and doc["n"] == g.n
        got = np.array(
            [np.inf if d is None else d for d in doc["distances"]]
        )
        assert np.array_equal(got, ref)
        assert doc["reachable"] == int(np.isfinite(ref).sum())

    def test_route_with_path(self, stack):
        g, _svc, server = stack
        doc = _get(f"{server.url}/route/3/41")
        ref = dijkstra(g, 3).dist
        assert doc["distance"] == ref[41]
        assert doc["reachable"] is True
        assert doc["path"][0] == 3 and doc["path"][-1] == 41

    def test_nearest(self, stack):
        g, _svc, server = stack
        doc = _get(f"{server.url}/nearest/11/5")
        ref = dijkstra(g, 11).dist
        assert doc["count"] == 5
        assert doc["distances"] == np.sort(ref)[1:6].tolist()
        assert 11 not in doc["vertices"]

    def test_unreachable_distance_serializes_as_null(self):
        """JSON has no Infinity — the wire format must stay parseable."""
        from repro.graphs import from_edge_list, unit_weights

        g = unit_weights(from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)]))
        svc = RoutingService(g, k=1, rho=1, heuristic="full")
        with RoutingHTTPServer(svc) as server:
            doc = _get(f"{server.url}/route/0/3")
            assert doc["distance"] is None
            assert doc["reachable"] is False
            row = _get(f"{server.url}/distances/0")
            assert row["distances"][3] is None
            assert row["distances"][1] == 1.0

    def test_batch_mixed(self, stack):
        g, _svc, server = stack
        ref = dijkstra(g, 5).dist
        doc = _post(
            f"{server.url}/batch",
            {
                "queries": [
                    {"type": "distances", "source": 5},
                    {"type": "route", "source": 5, "target": 20},
                    {"type": "nearest", "source": 5, "k": 3},
                ]
            },
        )
        assert doc["count"] == 3
        dists, route, near = doc["answers"]
        assert dists["type"] == "distances"
        assert dists["distances"][20] == ref[20]
        assert route["distance"] == ref[20]
        assert near["distances"] == np.sort(ref)[1:4].tolist()

    def test_batch_accepts_bare_list(self, stack):
        _g, _svc, server = stack
        doc = _post(f"{server.url}/batch", [{"type": "distances", "source": 0}])
        assert doc["count"] == 1


class TestErrorMapping:
    @pytest.mark.parametrize(
        "path, fragment",
        [
            ("/route/3/-1", "out of range"),          # planner range check
            ("/route/3/9999", "out of range"),
            ("/distances/abc", "must be an integer"),  # path validation
            ("/nearest/3/-2", "k must be >= 0"),       # negative k
            ("/route/3", "no GET endpoint"),           # wrong arity -> 404
            ("/unknown", "no GET endpoint"),
        ],
    )
    def test_bad_requests_are_4xx(self, stack, path, fragment):
        _g, _svc, server = stack
        status, body = _get_error(server.url + path)
        assert 400 <= status < 500
        assert fragment in body["message"]

    def test_malformed_json_body_is_400(self, stack):
        _g, _svc, server = stack
        status, body = _post_error(f"{server.url}/batch", b"{not json")
        assert status == 400
        assert "not valid JSON" in body["message"]

    def test_non_list_body_is_400(self, stack):
        _g, _svc, server = stack
        status, _body = _post_error(f"{server.url}/batch", b'{"queries": 3}')
        assert status == 400

    def test_unknown_query_type_is_400(self, stack):
        _g, _svc, server = stack
        status, body = _post_error(
            f"{server.url}/batch", json.dumps([{"type": "teleport"}]).encode()
        )
        assert status == 400
        assert "unknown type" in body["message"]

    def test_missing_field_is_400(self, stack):
        _g, _svc, server = stack
        status, body = _post_error(
            f"{server.url}/batch", json.dumps([{"type": "route", "source": 1}]).encode()
        )
        assert status == 400
        assert "missing field" in body["message"]

    def test_json_bool_vertex_is_400(self, stack):
        """JSON true must not silently become vertex 1 (the bool/int
        subclass bugfix, seen end to end through the wire)."""
        _g, _svc, server = stack
        status, body = _post_error(
            f"{server.url}/batch",
            json.dumps([{"type": "distances", "source": True}]).encode(),
        )
        assert status == 400
        assert "bool" in body["message"]

    def test_post_to_get_endpoint_is_404(self, stack):
        _g, _svc, server = stack
        status, _ = _post_error(f"{server.url}/healthz", b"{}")
        assert status == 404

    def test_internal_failure_is_500(self):
        """A server-side blow-up maps to 5xx with a typed JSON error,
        not a hung connection or an HTML traceback."""
        g = random_connected_graph(30, 70, seed=3)
        svc = RoutingService(g, k=1, rho=4, heuristic="full")

        class Boom(RuntimeError):
            pass

        def explode(*a, **k):
            raise Boom("engine exploded")

        svc.distances = explode
        with RoutingHTTPServer(svc) as server:
            status, body = _get_error(f"{server.url}/distances/0")
        assert status == 500
        assert body["error"] == "Boom"
        assert "engine exploded" in body["message"]


class TestKeepAlive:
    """HTTP/1.1 persistent connections must never desync: an error
    response that leaves a POST body unread has to advertise and
    perform a close, while fully-consumed requests keep the socket."""

    @staticmethod
    def _conn(server):
        host, port = server.server_address[:2]
        return http.client.HTTPConnection(host, port, timeout=10)

    def test_get_requests_reuse_one_connection(self, stack):
        _g, _svc, server = stack
        conn = self._conn(server)
        try:
            for path in ("/healthz", "/stats", "/route/1/2"):
                conn.request("GET", path)
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
                assert resp.getheader("Connection") != "close"
        finally:
            conn.close()

    def test_rejected_post_with_unread_body_closes_connection(self, stack):
        """Regression: a 404 for POST /healthz used to leave the body
        bytes on the socket — the next request on the same connection
        was parsed starting at the stale body (garbage 400/hang)."""
        _g, _svc, server = stack
        conn = self._conn(server)
        try:
            conn.request(
                "POST",
                "/healthz",
                body='{"stale": "body"}',
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            assert resp.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_get_with_body_closes_connection(self, stack):
        """A body on a bodiless endpoint is never drained — the guard
        must close regardless of method (GET used to slip through and
        desync the next request on the socket)."""
        _g, _svc, server = stack
        conn = self._conn(server)
        try:
            conn.request("GET", "/healthz", body="xxxx")
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
            assert resp.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_negative_content_length_rejected_immediately(self, stack):
        """Content-Length: -1 used to reach rfile.read(-1), blocking a
        handler thread for the whole request timeout — it must 400 at
        once."""
        import socket
        import time

        _g, _svc, server = stack
        host, port = server.server_address[:2]
        t0 = time.perf_counter()
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: -1\r\n\r\n"
            )
            status_line = sock.recv(65536).split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert time.perf_counter() - t0 < 5.0

    def test_chunked_body_closes_connection(self, stack):
        """Chunked framing is never decoded, so its bytes always linger
        — the guard must close even without a Content-Length header."""
        import socket

        _g, _svc, server = stack
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n0\r\n\r\n"
            )
            raw = sock.recv(65536)
        head = raw.split(b"\r\n\r\n", 1)[0].lower()
        assert b" 200 " in raw.split(b"\r\n", 1)[0]
        assert b"connection: close" in head

    def test_post_400_after_body_read_keeps_connection(self, stack):
        """A planner-level 400 (body fully drained) must not cost the
        connection: the follow-up request on the same socket works."""
        _g, _svc, server = stack
        conn = self._conn(server)
        try:
            conn.request(
                "POST",
                "/batch",
                body=json.dumps([{"type": "nearest", "source": 1, "k": -1}]),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            resp.read()
            assert resp.getheader("Connection") != "close"
            conn.request("GET", "/healthz")
            follow = conn.getresponse()
            assert follow.status == 200
            assert json.loads(follow.read())["status"] == "ok"
        finally:
            conn.close()


class TestConcurrentServing:
    def test_concurrent_mixed_workload_zero_errors_serial_identical(self, stack):
        """The acceptance criterion: 8 client threads of mixed queries,
        zero errors, every answer bit-identical to a serial planner."""
        g, _svc, server = stack
        n_threads, reps = 8, 6
        serial = QueryPlanner(
            RoutingService(g, k=2, rho=8).solver, capacity=64, track_parents=True
        )
        errors: list[BaseException] = []
        results: dict[int, list] = {}
        barrier = threading.Barrier(n_threads)

        def client(i: int) -> None:
            try:
                barrier.wait()
                out = []
                for r in range(reps):
                    s = (i * 3 + r) % 24
                    t = (i * 5 + r + 1) % 24
                    out.append(("row", s, _get(f"{server.url}/distances/{s}")))
                    out.append(("route", s, t, _get(f"{server.url}/route/{s}/{t}")))
                    out.append(("near", s, _get(f"{server.url}/nearest/{s}/4")))
                    batch = _post(
                        f"{server.url}/batch",
                        [
                            {"type": "route", "source": s, "target": t},
                            {"type": "nearest", "source": t, "k": 3},
                        ],
                    )
                    out.append(("batch", s, t, batch))
                results[i] = out
            except BaseException as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        def as_row(doc):
            return np.array(
                [np.inf if d is None else d for d in doc["distances"]]
            )

        for i, out in results.items():
            for item in out:
                if item[0] == "row":
                    _, s, doc = item
                    assert np.array_equal(as_row(doc), serial.distances(s))
                elif item[0] == "route":
                    _, s, t, doc = item
                    want = serial.route(s, t)
                    assert doc["distance"] == want.distance
                    assert tuple(doc["path"]) == want.path
                elif item[0] == "near":
                    _, s, doc = item
                    want = serial.nearest(s, 4)
                    assert doc["vertices"] == want.vertices.tolist()
                    assert doc["distances"] == want.distances.tolist()
                else:
                    _, s, t, doc = item
                    route, near = doc["answers"]
                    assert route["distance"] == serial.route(s, t).distance
                    want = serial.nearest(t, 3)
                    assert near["distances"] == want.distances.tolist()

        # server-side sanity: the planner saw concurrent traffic and its
        # books still balance
        stats = _get(f"{server.url}/stats")
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["cached_rows"] <= stats["capacity"]


class TestLifecycle:
    def test_graceful_shutdown(self):
        g = random_connected_graph(30, 70, seed=9)
        svc = RoutingService(g, k=1, rho=4, heuristic="full")
        server = RoutingHTTPServer(svc).start()
        url = server.url
        assert _get(f"{url}/healthz")["status"] == "ok"
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(f"{url}/healthz")
        server.close()  # idempotent

    def test_idle_keepalive_connection_cannot_stall_shutdown(self):
        """Regression: close() joins non-daemon handler threads, and an
        idle HTTP/1.1 keep-alive connection used to pin its thread in
        readline() forever — shutdown hung until the client went away.
        The per-read request_timeout bounds the stall."""
        import time

        g = random_connected_graph(20, 40, seed=8)
        svc = RoutingService(g, k=1, rho=4, heuristic="full")
        server = RoutingHTTPServer(svc, request_timeout=0.5).start()
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
            # connection now idles open (keep-alive); close() must not
            # block past the request timeout waiting for it
            t0 = time.perf_counter()
            server.close()
            assert time.perf_counter() - t0 < 5.0
        finally:
            conn.close()

    def test_double_start_rejected(self):
        g = random_connected_graph(20, 40, seed=4)
        svc = RoutingService(g, k=1, rho=4, heuristic="full")
        with RoutingHTTPServer(svc) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_serve_helper(self):
        from repro.serve import serve

        g = random_connected_graph(20, 40, seed=4)
        svc = RoutingService(g, k=1, rho=4, heuristic="full")
        server = serve(svc)
        try:
            assert _get(f"{server.url}/healthz")["status"] == "ok"
        finally:
            server.close()

    def test_non_surface_service_rejected(self):
        """The server is typed against QuerySurface and fails fast on
        anything that does not implement it."""
        with pytest.raises(TypeError, match="QuerySurface"):
            RoutingHTTPServer(object())

    def test_shard_router_is_a_drop_in(self):
        """The sharded surface behind the same JSON API: identical
        endpoints, bit-identical distances, topology in healthz/stats."""
        from repro.serve import ShardRouter

        g = random_connected_graph(48, 110, seed=13, weight_high=30)
        router = ShardRouter(g, n_shards=3, k=1, rho=6, heuristic="full")
        reference = RoutingService(g, k=1, rho=6, heuristic="full")
        with RoutingHTTPServer(router) as server:
            health = _get(f"{server.url}/healthz")
            assert health["status"] == "ok"
            assert health["shards"] == 3
            doc = _get(f"{server.url}/distances/7")
            got = np.array(
                [np.inf if d is None else d for d in doc["distances"]]
            )
            assert np.array_equal(got, reference.distances(7))
            route = _get(f"{server.url}/route/3/41")
            assert route["distance"] == reference.route(3, 41).distance
            stats = _get(f"{server.url}/stats")
            assert stats["shards"] == 3
            shards = stats["topology"]["shards"]
            assert len(shards) == 3
            assert sum(s["vertices"] for s in shards) == g.n
            assert all(s["boundary"] >= 1 for s in shards)

    def test_serve_helper_as_context_manager(self):
        """Regression: __enter__ used to call start() unconditionally,
        so `with serve(svc) as s:` raised 'already started'."""
        from repro.serve import serve

        g = random_connected_graph(20, 40, seed=4)
        svc = RoutingService(g, k=1, rho=4, heuristic="full")
        with serve(svc) as server:
            assert _get(f"{server.url}/healthz")["status"] == "ok"
        with pytest.raises(urllib.error.URLError):
            _get(f"{server.url}/healthz")
