"""The shard-internal HTTP surface: binary row frames + readiness.

``GET /internal/row`` / ``/internal/rows`` are what a RemoteBackend
fetches over the wire, so the bar here is bit-equality against the
service's own ``distances()`` — the frame codec must not launder floats
through JSON.  Also pins the request-hygiene edges (bad ids, oversized
batches, unknown internal paths) and the degraded-mode mapping: a
surface raising :class:`ShardUnavailableError` surfaces as a typed 503
naming the failing shard.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    RoutingHTTPServer,
    RoutingService,
    ShardUnavailableError,
)
from repro.serve.backends import (
    MAX_ROWS_PER_FETCH,
    ROWS_CONTENT_TYPE,
    decode_rows,
)

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def stack():
    g = random_connected_graph(40, 90, seed=21, weight_high=20)
    service = RoutingService(g, k=2, rho=8, cache_capacity=16)
    registry = MetricsRegistry()
    with RoutingHTTPServer(service, registry=registry) as server:
        yield g, service, server


def _get_raw(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.headers.get("Content-Type"), resp.read()


def _get_error(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            pytest.fail(f"expected an HTTP error, got 200: {resp.read()!r}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestReady:
    def test_ready_reflects_healthz(self, stack):
        _g, service, server = stack
        ctype, body = _get_raw(f"{server.url}/internal/ready")
        assert "application/json" in ctype
        doc = json.loads(body)
        assert doc["ready"] is True
        assert doc["status"] == "ok"
        assert doc["shards"] == service.healthz()["shards"]


class TestBinaryRows:
    def test_single_row_bit_identical(self, stack, request):
        g, service, server = stack
        ctype, body = _get_raw(f"{server.url}/internal/row/7")
        assert ctype == ROWS_CONTENT_TYPE
        mat = decode_rows(body, expect_len=g.n)
        assert mat.shape == (1, g.n)
        assert mat[0].tobytes() == service.distances(7).tobytes()

    def test_batch_rows_order_and_bits(self, stack):
        g, service, server = stack
        sources = [9, 0, 9, 33]  # duplicates must come back in order
        csv = ",".join(map(str, sources))
        ctype, body = _get_raw(f"{server.url}/internal/rows/{csv}")
        assert ctype == ROWS_CONTENT_TYPE
        mat = decode_rows(body, expect_len=g.n)
        assert mat.shape == (len(sources), g.n)
        for row, s in zip(mat, sources):
            assert row.tobytes() == service.distances(s).tobytes()

    def test_unreachable_inf_survives_the_wire(self, stack):
        """JSON would turn inf into null; the binary frame must not."""
        g, _service, server = stack
        _ctype, body = _get_raw(f"{server.url}/internal/row/0")
        row = decode_rows(body, expect_len=g.n)[0]
        assert row.dtype == np.float64  # raw float64, no precision laundering


class TestRequestHygiene:
    def test_bad_vertex_id_400(self, stack):
        _g, _svc, server = stack
        code, doc = _get_error(f"{server.url}/internal/row/nope")
        assert code == 400 and doc["error"] == "BadRequest"

    def test_out_of_range_vertex_400(self, stack):
        _g, _svc, server = stack
        code, _doc = _get_error(f"{server.url}/internal/row/99999")
        assert code == 400

    def test_oversized_batch_400(self, stack):
        _g, _svc, server = stack
        csv = ",".join(["0"] * (MAX_ROWS_PER_FETCH + 1))
        code, doc = _get_error(f"{server.url}/internal/rows/{csv}")
        assert code == 400
        assert str(MAX_ROWS_PER_FETCH) in doc["message"]

    def test_empty_batch_400(self, stack):
        _g, _svc, server = stack
        code, _doc = _get_error(f"{server.url}/internal/rows/,")
        assert code == 400

    def test_unknown_internal_path_404(self, stack):
        _g, _svc, server = stack
        code, _doc = _get_error(f"{server.url}/internal/bogus")
        assert code == 404

    def test_internal_is_one_metrics_endpoint_label(self, stack):
        """Unbounded endpoint labels would blow up series cardinality:
        every internal path folds into endpoint="internal"."""
        _g, _svc, server = stack
        _get_raw(f"{server.url}/internal/row/1")
        _ctype, body = _get_raw(f"{server.url}/metrics")
        text = body.decode()
        assert 'endpoint="internal"' in text
        assert 'endpoint="internal/row"' not in text


class TestDegradedMapping:
    def test_shard_unavailable_maps_to_typed_503(self, stack):
        g, service, server = stack

        class DeadShard:
            """Surface whose stitch layer lost a shard."""

            def _die(self):
                raise ShardUnavailableError(
                    2, "http://10.0.0.9:7002", "ConnectionRefusedError"
                )

            def distances(self, source):
                self._die()

            def route(self, s, t):
                self._die()

            def nearest(self, s, k):
                self._die()

            def batch(self, queries):
                self._die()

            def warm(self, sources):
                self._die()

            def stats(self):
                return service.stats()

            def healthz(self):
                return {"status": "degraded", "shards": 4}

        with RoutingHTTPServer(DeadShard()) as degraded:
            code, doc = _get_error(f"{degraded.url}/distances/0")
            assert code == 503
            assert doc["error"] == "ShardUnavailable"
            assert doc["shard"] == 2
            assert doc["endpoint"] == "http://10.0.0.9:7002"
            assert "shard 2" in doc["message"]
            # readiness reports the degradation without raising
            _ctype, body = _get_raw(f"{degraded.url}/internal/ready")
            ready = json.loads(body)
            assert ready["ready"] is False
            assert ready["status"] == "degraded"
