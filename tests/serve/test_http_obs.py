"""HTTP observability: /metrics, X-Request-Id, /debug/slow — both backends.

The acceptance bar from the observability PR: ``GET /metrics`` serves a
valid Prometheus text exposition (validated against the minimal parser
in :mod:`repro.obs.expo`) carrying request, planner, and engine series
for BOTH the single-graph :class:`RoutingService` and the sharded
:class:`ShardRouter`; every response — success and error alike — echoes
or mints ``X-Request-Id``; and ``GET /debug/slow`` dumps span trees of
threshold-crossing requests.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.expo import CONTENT_TYPE, parse
from repro.serve import RoutingHTTPServer, RoutingService, ShardRouter

from tests.helpers import random_connected_graph


def _make_service():
    g = random_connected_graph(48, 110, seed=17, weight_high=30)
    return RoutingService(g, k=1, rho=6, heuristic="full")


def _make_router():
    g = random_connected_graph(48, 110, seed=17, weight_high=30)
    return ShardRouter(g, n_shards=3, k=1, rho=6, heuristic="full")


@pytest.fixture(scope="module", params=["service", "router"])
def stack(request):
    surface = _make_service() if request.param == "service" else _make_router()
    registry = MetricsRegistry()  # isolated: no cross-test/global bleed
    with RoutingHTTPServer(surface, registry=registry, slow_ms=0.0) as server:
        yield surface, registry, server


def _get(url: str, headers: dict | None = None):
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _get_json(url: str, headers: dict | None = None):
    status, hdrs, body = _get(url, headers)
    return status, hdrs, json.loads(body)


def _get_error(url: str, headers: dict | None = None):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=10):
            pytest.fail("expected an HTTP error")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def _scrape(server):
    status, hdrs, body = _get(f"{server.url}/metrics")
    assert status == 200
    assert hdrs["Content-Type"] == CONTENT_TYPE
    return parse(body.decode())


class TestMetricsEndpoint:
    def test_scrape_parses_and_counts_requests(self, stack):
        _surface, _registry, server = stack
        _get_json(f"{server.url}/distances/7")
        _get_json(f"{server.url}/route/3/41")
        _get_json(f"{server.url}/healthz")

        exp = _scrape(server)
        assert exp.types["http_requests_total"] == "counter"
        assert exp.types["http_request_seconds"] == "histogram"
        assert exp.value("http_requests_total", endpoint="distances", status="200") >= 1
        assert exp.value("http_requests_total", endpoint="route", status="200") >= 1
        lat = exp.histogram_counts("http_request_seconds", endpoint="distances")
        assert lat["+Inf"] == exp.value(
            "http_request_seconds_count", endpoint="distances"
        )

    def test_planner_and_engine_series_present(self, stack):
        """The stats() bridge and engine telemetry land on the scrape
        for both backends."""
        _surface, _registry, server = stack
        _get_json(f"{server.url}/distances/5")
        exp = _scrape(server)

        lookups = exp.series("planner_cache_lookups_total")
        assert lookups, "planner bridge missing from scrape"
        for labels in lookups:
            assert dict(labels)["outcome"] in ("hit", "miss")
        assert exp.series("planner_cached_rows")
        assert exp.types["planner_cached_rows"] == "gauge"

        solves = exp.series("engine_solves_total")
        assert solves and all(dict(l)["engine"] for l in solves)
        assert sum(exp.series("engine_solve_steps_count").values()) >= 1

    def test_router_stitched_series(self, stack):
        _surface, _registry, server = stack
        if not isinstance(_surface, ShardRouter):
            pytest.skip("stitched cache is router-only")
        _get_json(f"{server.url}/distances/9")
        exp = _scrape(server)
        stitched = exp.series("router_stitched_lookups_total")
        assert stitched
        # per-shard planner series carry the shard label
        shards = {
            dict(l)["shard"] for l in exp.series("planner_cached_rows")
        }
        assert shards == {"0", "1", "2"}

    def test_scrape_agrees_with_stats(self, stack):
        """/metrics and /stats are two views of the same counters."""
        _surface, _registry, server = stack
        _get_json(f"{server.url}/distances/11")
        _status, _hdrs, stats = _get_json(f"{server.url}/stats")
        exp = _scrape(server)
        lookups = sum(exp.series("planner_cache_lookups_total").values())
        assert lookups == stats["lookups"]
        evictions = sum(exp.series("planner_cache_evictions_total").values())
        assert evictions == stats["evictions"]

    def test_error_responses_counted(self, stack):
        _surface, _registry, server = stack
        _get_error(f"{server.url}/distances/abc")  # 400
        _get_error(f"{server.url}/nosuch")  # 404
        exp = _scrape(server)
        assert exp.value("http_requests_total", endpoint="distances", status="400") >= 1
        assert exp.value("http_requests_total", endpoint="unknown", status="404") >= 1


class TestRequestId:
    def test_client_id_echoed(self, stack):
        _surface, _registry, server = stack
        _status, hdrs, _doc = _get_json(
            f"{server.url}/healthz", headers={"X-Request-Id": "my-req-42"}
        )
        assert hdrs["X-Request-Id"] == "my-req-42"

    def test_minted_when_absent(self, stack):
        _surface, _registry, server = stack
        _status, h1, _ = _get_json(f"{server.url}/healthz")
        _status, h2, _ = _get_json(f"{server.url}/healthz")
        assert h1["X-Request-Id"] and h2["X-Request-Id"]
        assert h1["X-Request-Id"] != h2["X-Request-Id"]

    def test_echoed_on_error_paths(self, stack):
        _surface, _registry, server = stack
        for path in ("/distances/abc", "/nosuch/endpoint", "/route/0/99999"):
            _code, hdrs, _body = _get_error(
                server.url + path, headers={"X-Request-Id": "err-trace-1"}
            )
            assert hdrs["X-Request-Id"] == "err-trace-1"

    def test_echoed_on_500(self):
        svc = _make_service()

        def explode(*a, **k):
            raise RuntimeError("boom")

        svc.distances = explode
        with RoutingHTTPServer(svc, registry=MetricsRegistry()) as server:
            code, hdrs, _body = _get_error(
                f"{server.url}/distances/0", headers={"X-Request-Id": "srv-err"}
            )
        assert code == 500
        assert hdrs["X-Request-Id"] == "srv-err"

    def test_header_injection_sanitized(self, stack):
        """Control characters and non-ASCII never round-trip into the
        response header; overlong ids are truncated."""
        _surface, _registry, server = stack
        _status, hdrs, _doc = _get_json(
            f"{server.url}/healthz",
            headers={"X-Request-Id": "ok\tid\x7fwith junk\xff"},
        )
        echoed = hdrs["X-Request-Id"]
        assert echoed == "okidwithjunk"
        _status, hdrs, _doc = _get_json(
            f"{server.url}/healthz", headers={"X-Request-Id": "a" * 500}
        )
        assert hdrs["X-Request-Id"] == "a" * 128


class TestSlowLog:
    def test_slow_log_captures_span_trees(self, stack):
        """With slow_ms=0 every request is an offender: the dump carries
        request ids, endpoint/status context, and the nested spans."""
        _surface, _registry, server = stack
        _get_json(
            f"{server.url}/distances/21",
            headers={"X-Request-Id": "slow-probe-7"},
        )
        _status, _hdrs, doc = _get_json(f"{server.url}/debug/slow")
        assert doc["threshold_ms"] == 0.0
        assert doc["recorded"] >= 1
        mine = next(
            e for e in doc["entries"] if e["request_id"] == "slow-probe-7"
        )
        assert mine["endpoint"] == "distances"
        assert mine["status"] == 200
        assert mine["method"] == "GET"
        assert mine["trace"]["name"] == "GET distances"
        assert mine["duration_ms"] >= 0

    def test_cold_query_trace_reaches_solver(self):
        """On a cold cache miss the recorded tree includes the planner
        and solver spans — the point of end-to-end propagation."""
        registry = MetricsRegistry()
        with RoutingHTTPServer(
            _make_service(), registry=registry, slow_ms=0.0
        ) as server:
            _get_json(
                f"{server.url}/distances/33",
                headers={"X-Request-Id": "cold-1"},
            )
            _status, _hdrs, doc = _get_json(f"{server.url}/debug/slow")
        entry = next(
            e for e in doc["entries"] if e["request_id"] == "cold-1"
        )

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        seen = set(names(entry["trace"]))
        assert "planner.execute" in seen
        assert "planner.solve_missing" in seen
        assert "solver.solve_many" in seen

    def test_threshold_filters_fast_requests(self):
        registry = MetricsRegistry()
        with RoutingHTTPServer(
            _make_service(), registry=registry, slow_ms=1e6
        ) as server:
            _get_json(f"{server.url}/healthz")
            _status, _hdrs, doc = _get_json(f"{server.url}/debug/slow")
        assert doc["entries"] == []
        assert doc["seen"] >= 1


class TestRouterStatsParity:
    def test_stats_per_shard_and_engines(self):
        """ShardRouter.stats() reports what RoutingService.stats() does:
        per-planner counters, engine descriptions, finite-or-null
        locality numbers."""
        router = _make_router()
        with RoutingHTTPServer(router, registry=MetricsRegistry()) as server:
            _get_json(f"{server.url}/distances/7")
            _status, _hdrs, stats = _get_json(f"{server.url}/stats")
        assert stats["shards"] == 3
        assert isinstance(stats["engines"], dict) and stats["engines"]
        per_shard = stats["per_shard"]
        assert len(per_shard) == 3
        for entry in per_shard:
            assert entry["hits"] + entry["misses"] == entry["lookups"]
            assert "preferred_engine" in entry
            loc = entry["locality"]
            for v in (loc["before"], loc["after"]):
                assert v is None or isinstance(v, float)
        # stitched-row cache counters balance too
        stitched = stats["stitched"]
        assert stitched["hits"] + stitched["misses"] == stitched["lookups"]
        assert stitched["lookups"] >= 1
        json.dumps(stats)  # nan-free by construction
