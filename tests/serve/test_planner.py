"""Query planner: cache behavior, coalescing, and answer correctness."""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.serve import KNearest, Nearest, PointToPoint, QueryPlanner, Route, SingleSource

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def case():
    g = random_connected_graph(50, 120, seed=17, weight_high=25)
    return g, PreprocessedSSSP(g, k=2, rho=8, heuristic="dp")


def make_planner(case, **kwargs):
    _, sp = case
    kwargs.setdefault("track_parents", True)
    return QueryPlanner(sp, **kwargs)


class TestCorrectness:
    def test_single_source_matches_dijkstra(self, case):
        g, _ = case
        planner = make_planner(case)
        for s in (0, 7, 23):
            assert np.array_equal(planner.distances(s), dijkstra(g, s).dist)

    def test_point_to_point(self, case):
        g, _ = case
        planner = make_planner(case)
        route = planner.route(3, 40)
        ref = dijkstra(g, 3).dist
        assert isinstance(route, Route)
        assert route.distance == ref[40]
        assert route.path[0] == 3 and route.path[-1] == 40

    def test_route_path_telescopes_on_augmented_graph(self, case):
        """Each hop is a real (possibly shortcut) edge whose weights sum
        to the exact distance."""
        _, sp = case
        planner = make_planner(case)
        route = planner.route(5, 31)
        aug = sp.graph
        total = 0.0
        for u, v in zip(route.path, route.path[1:]):
            total += aug.edge_weight(u, v)
        assert total == route.distance

    def test_route_without_parent_tracking_has_no_path(self, case):
        planner = make_planner(case, track_parents=False)
        route = planner.route(3, 40)
        assert route.path is None
        assert route.distance == dijkstra(case[0], 3).dist[40]

    def test_k_nearest(self, case):
        g, _ = case
        planner = make_planner(case)
        near = planner.nearest(11, 5)
        ref = dijkstra(g, 11).dist
        assert isinstance(near, Nearest)
        assert len(near.vertices) == 5
        assert 11 not in near.vertices
        assert np.array_equal(near.distances, ref[near.vertices])
        # the k smallest non-source distances, sorted (distance, vertex)
        assert np.array_equal(near.distances, np.sort(ref)[1:6])
        assert near.distances.tolist() == sorted(near.distances.tolist())

    def test_k_nearest_clamps_to_graph(self, case):
        g, _ = case
        planner = make_planner(case)
        near = planner.nearest(0, 10_000)
        assert len(near.vertices) == g.n - 1

    def test_k_nearest_deterministic_tie_break(self, case):
        planner = make_planner(case)
        a = planner.nearest(2, 8)
        b = planner.nearest(2, 8)
        assert np.array_equal(a.vertices, b.vertices)

    def test_k_nearest_never_returns_unreachable(self):
        """On a disconnected graph, vertices in other components must
        not be presented as 'nearest' — fewer results come back."""
        from repro.graphs import from_edge_list, unit_weights

        g = unit_weights(from_edge_list(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]))
        sp = PreprocessedSSSP(g, k=1, rho=1, heuristic="full")
        planner = QueryPlanner(sp)
        near = planner.nearest(0, 5)
        assert near.vertices.tolist() == [1, 2]
        assert np.isfinite(near.distances).all()


class TestCache:
    def test_hit_miss_counters(self, case):
        planner = make_planner(case, capacity=8)
        planner.distances(0)
        planner.distances(0)
        planner.route(0, 5)
        s = planner.stats()
        assert s["misses"] == 1
        assert s["hits"] == 2
        assert s["solves"] == 1

    def test_point_to_point_served_from_cached_row(self, case):
        """After one single-source query, any route from that source is
        a pure cache read."""
        planner = make_planner(case)
        planner.distances(9)
        before = planner.stats()["solves"]
        for t in (1, 2, 3, 4):
            planner.route(9, t)
        s = planner.stats()
        assert s["solves"] == before
        assert s["hits"] >= 4

    def test_eviction_lru_order(self, case):
        # stripes=1: the serial planner's exact global LRU order (with
        # striping, eviction order is per stripe)
        planner = make_planner(case, capacity=2, stripes=1)
        planner.distances(0)   # cache: {0}
        planner.distances(1)   # cache: {0, 1}
        planner.distances(0)   # refresh 0 → LRU order {1, 0}
        planner.distances(2)   # evicts 1
        assert planner.stats()["evictions"] == 1
        before = planner.stats()["solves"]
        planner.distances(0)   # still cached
        assert planner.stats()["solves"] == before
        planner.distances(1)   # evicted → re-solve
        assert planner.stats()["solves"] == before + 1

    def test_capacity_zero_disables_cache(self, case):
        planner = make_planner(case, capacity=0)
        planner.distances(0)
        planner.distances(0)
        s = planner.stats()
        assert s["cached_rows"] == 0
        assert s["hits"] == 0
        assert s["solves"] == 2

    def test_negative_capacity_rejected(self, case):
        with pytest.raises(ValueError, match="capacity"):
            make_planner(case, capacity=-1)

    def test_invalid_stripes_rejected(self, case):
        with pytest.raises(ValueError, match="stripes"):
            make_planner(case, stripes=0)

    def test_stripes_clamped_to_capacity(self, case):
        """More stripes than capacity must not inflate the cache: every
        stripe owns >= 1 slot and totals never exceed capacity."""
        planner = make_planner(case, capacity=3, stripes=16)
        assert planner.stats()["stripes"] == 3
        for s in range(12):
            planner.distances(s)
        assert planner.stats()["cached_rows"] <= 3

    def test_total_cached_rows_bounded_across_stripes(self, case):
        planner = make_planner(case, capacity=6, stripes=4)
        for s in range(20):
            planner.distances(s)
        stats = planner.stats()
        assert stats["cached_rows"] <= 6
        assert stats["evictions"] >= 14
        assert stats["lookups"] == stats["hits"] + stats["misses"] == 20

    def test_cached_rows_are_read_only(self, case):
        planner = make_planner(case)
        row = planner.distances(4)
        with pytest.raises(ValueError):
            row[0] = -1.0

    def test_auto_and_concrete_engine_share_cache(self, case):
        """'auto' resolves before keying, so it hits rows cached under
        the concrete name."""
        _, sp = case
        planner = make_planner(case, engine="auto")
        assert planner.stats()["engine"] == sp.resolve_engine("auto")


class TestBatching:
    def test_mixed_batch_answers_in_order(self, case):
        g, _ = case
        planner = make_planner(case)
        ref0 = dijkstra(g, 0).dist
        answers = planner.execute(
            [SingleSource(0), PointToPoint(0, 9), KNearest(0, 3), SingleSource(7)]
        )
        assert np.array_equal(answers[0], ref0)
        assert answers[1].distance == ref0[9]
        assert np.array_equal(answers[2].distances, np.sort(ref0)[1:4])
        assert np.array_equal(answers[3], dijkstra(g, 7).dist)

    def test_batch_coalesces_shared_sources(self, case):
        """Five queries over two distinct sources = one batch, two
        solves, three coalesced requests."""
        planner = make_planner(case)
        planner.execute(
            [
                SingleSource(3),
                PointToPoint(3, 10),
                KNearest(3, 2),
                PointToPoint(8, 1),
                SingleSource(8),
            ]
        )
        s = planner.stats()
        assert s["batches"] == 1
        assert s["solves"] == 2
        assert s["coalesced"] == 3

    def test_batch_mixes_hits_and_misses(self, case):
        planner = make_planner(case)
        planner.distances(5)
        planner.execute([SingleSource(5), SingleSource(6)])
        s = planner.stats()
        assert s["hits"] == 1
        assert s["misses"] == 2  # first 5, then 6

    def test_shorthand_queries(self, case):
        g, _ = case
        planner = make_planner(case)
        answers = planner.execute([4, (4, 12)])
        assert np.array_equal(answers[0], dijkstra(g, 4).dist)
        assert answers[1] == planner.route(4, 12)

    def test_unsupported_query_type_rejected(self, case):
        planner = make_planner(case)
        with pytest.raises(TypeError, match="unsupported query"):
            planner.execute(["not-a-query"])

    def test_out_of_range_vertices_rejected(self, case):
        """Negative indices must not silently serve vertex n+v (numpy
        wraparound); past-the-end must be a clear error, not an
        IndexError from deep inside."""
        g, _ = case
        planner = make_planner(case)
        with pytest.raises(ValueError, match="target -1 out of range"):
            planner.route(3, -1)
        with pytest.raises(ValueError, match="target"):
            planner.route(3, g.n)
        with pytest.raises(ValueError, match="source"):
            planner.distances(-2)
        with pytest.raises(ValueError, match="source"):
            planner.nearest(g.n + 5, 3)

    def test_warm_prepopulates(self, case):
        planner = make_planner(case)
        planner.warm([1, 2, 3])
        before = planner.stats()["solves"]
        planner.distances(2)
        assert planner.stats()["solves"] == before


class TestValidation:
    def test_warm_validates_sources(self, case):
        """Regression: warm() used to skip _check_vertex — warm([-1])
        silently solved from vertex n-1 and cached the row under key
        -1.  It must raise and cache/solve nothing."""
        g, _ = case
        planner = make_planner(case)
        with pytest.raises(ValueError, match="source -1 out of range"):
            planner.warm([-1])
        with pytest.raises(ValueError, match="source"):
            planner.warm([0, g.n])
        s = planner.stats()
        assert s["solves"] == 0
        assert s["cached_rows"] == 0

    def test_warm_rejects_bool_sources(self, case):
        planner = make_planner(case)
        with pytest.raises(TypeError, match="bool"):
            planner.warm([True])

    def test_bool_query_rejected(self, case):
        """Regression: bool is an int subclass, so True used to become
        SingleSource(1) via isinstance(..., int)."""
        planner = make_planner(case)
        with pytest.raises(TypeError, match="bool"):
            planner.execute([True])
        with pytest.raises(TypeError, match="bool"):
            planner.execute([(True, 4)])
        with pytest.raises(TypeError, match="bool"):
            planner.distances(False)
        from repro.serve import SingleSource as SS

        with pytest.raises(TypeError, match="bool"):
            planner.execute([SS(True)])

    def test_negative_k_rejected(self, case):
        """Regression: KNearest(s, -3) used to silently return an empty
        Nearest instead of flagging the malformed request."""
        planner = make_planner(case)
        with pytest.raises(ValueError, match="k must be >= 0"):
            planner.nearest(3, -3)
        with pytest.raises(ValueError, match="k must be >= 0"):
            planner.execute([KNearest(3, -1)])
        with pytest.raises(TypeError, match="k must be an integer"):
            planner.execute([KNearest(3, True)])
        # k = 0 stays a valid (empty) request
        near = planner.nearest(3, 0)
        assert len(near.vertices) == 0

    def test_numpy_integer_sources_still_accepted(self, case):
        g, _ = case
        planner = make_planner(case)
        row = planner.distances(np.int64(7))
        assert np.array_equal(row, dijkstra(g, 7).dist)
        planner.warm(np.array([1, 2], dtype=np.int64))
