"""Concurrent planner access: the thread-safety acceptance gate.

PR 4's planner raced on its ``OrderedDict`` LRU under threads (lost
inserts, corrupted recency order, ``move_to_end`` on an evicted key)
and duplicated concurrent solves of the same source.  These tests
hammer the striped/single-flight planner from many threads and assert
the serving-layer invariants:

* no exceptions under a mixed ``execute``/``warm``/``stats`` load on
  overlapping sources, with eviction churn (capacity < working set);
* counters stay exact: ``hits + misses == lookups`` (one per probe,
  none lost), ``cached_rows <= capacity``;
* every answer is bit-identical to a fresh serial planner;
* concurrent misses on one source collapse onto a single ``solve_many``
  (single-flight), and a failing solve propagates its error to every
  waiting thread instead of stranding them.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.serve import KNearest, Nearest, PointToPoint, QueryPlanner, SingleSource

from tests.helpers import random_connected_graph

N_THREADS = 8
REPS = 25
SOURCES = list(range(24))


@pytest.fixture(scope="module")
def case():
    g = random_connected_graph(60, 150, seed=23, weight_high=40)
    return g, PreprocessedSSSP(g, k=2, rho=8, heuristic="dp")


def _thread_batch(i: int) -> list:
    """Deterministic per-thread mixed batch over overlapping sources."""
    n = len(SOURCES)
    return (
        [SingleSource(SOURCES[(i * 3 + j) % n]) for j in range(4)]
        + [
            PointToPoint(SOURCES[(i + j) % n], SOURCES[(i * 5 + j + 1) % n])
            for j in range(3)
        ]
        + [KNearest(SOURCES[(i * 7) % n], 5)]
    )


def _warm_sources(i: int) -> list:
    n = len(SOURCES)
    return [SOURCES[(i * 11) % n], SOURCES[(i * 11 + 1) % n]]


def _distinct(queries) -> int:
    return len({int(q.source) for q in queries})


class TestHammer:
    def test_mixed_execute_warm_stats_hammer(self, case):
        """8 threads × mixed ops on overlapping sources with eviction
        churn: no exceptions, exact counters, serial-identical answers."""
        g, sp = case
        capacity = 12  # < 24 distinct sources -> constant eviction churn
        planner = QueryPlanner(
            sp, capacity=capacity, track_parents=True, stripes=4
        )
        errors: list[BaseException] = []
        answers: dict[int, list] = {}
        barrier = threading.Barrier(N_THREADS)

        def worker(i: int) -> None:
            try:
                batch = _thread_batch(i)
                barrier.wait()
                for r in range(REPS):
                    got = planner.execute(batch)
                    if r % 3 == 0:
                        planner.warm(_warm_sources(i))
                    stats = planner.stats()
                    assert stats["cached_rows"] <= capacity
                answers[i] = got
            except BaseException as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        # -- counters: every probe counted exactly once, none lost ------
        expected_probes = sum(
            REPS * _distinct(_thread_batch(i))
            + len(range(0, REPS, 3)) * len(set(_warm_sources(i)))
            for i in range(N_THREADS)
        )
        stats = planner.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["lookups"] == expected_probes
        assert stats["cached_rows"] <= capacity
        assert stats["inflight"] == 0  # no stranded single-flight entries
        # rows solved at least once per distinct source ever requested
        assert stats["solves"] >= len(SOURCES) - capacity

        # -- answers: bit-identical to a fresh serial planner -----------
        serial = QueryPlanner(sp, capacity=64, track_parents=True, stripes=1)
        for i in range(N_THREADS):
            expected = serial.execute(_thread_batch(i))
            for got, want in zip(answers[i], expected):
                if isinstance(want, np.ndarray):
                    assert np.array_equal(got, want)
                elif isinstance(want, Nearest):
                    assert np.array_equal(got.vertices, want.vertices)
                    assert np.array_equal(got.distances, want.distances)
                else:  # Route
                    assert got == want

        # -- spot-check the metric itself against Dijkstra --------------
        for s in (0, 7, 23):
            assert np.array_equal(serial.distances(s), dijkstra(g, s).dist)

    def test_concurrent_warm_and_execute_share_solves(self, case):
        """warm() and execute() racing on the same sources must never
        corrupt the cache or double-count probes."""
        _, sp = case
        planner = QueryPlanner(sp, capacity=32, track_parents=True, stripes=4)
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def warmer() -> None:
            try:
                barrier.wait()
                for _ in range(10):
                    planner.warm(SOURCES[:8])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def executor() -> None:
            try:
                barrier.wait()
                for _ in range(10):
                    planner.execute([SingleSource(s) for s in SOURCES[:8]])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=warmer) for _ in range(2)] + [
            threading.Thread(target=executor) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        stats = planner.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"] == 4 * 10 * 8
        assert stats["cached_rows"] == 8
        # 8 distinct sources, never evicted: single-flight + cache mean
        # each was solved exactly once no matter how the threads raced
        assert stats["solves"] == 8


class TestSingleFlight:
    def _slow_solver(self, monkeypatch, sp, delay=0.05):
        calls: list[list[int]] = []
        real = PreprocessedSSSP.solve_many

        def slow(sources, **kwargs):
            calls.append([int(s) for s in sources])
            time.sleep(delay)
            return real(sp, sources, **kwargs)

        monkeypatch.setattr(sp, "solve_many", slow)
        return calls

    def test_concurrent_misses_collapse_to_one_solve(self, monkeypatch):
        g = random_connected_graph(40, 90, seed=5, weight_high=20)
        sp = PreprocessedSSSP(g, k=2, rho=6, heuristic="dp")
        calls = self._slow_solver(monkeypatch, sp)
        planner = QueryPlanner(sp, capacity=16, track_parents=True)
        barrier = threading.Barrier(N_THREADS)
        rows: list[np.ndarray] = []
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                barrier.wait()
                rows.append(planner.distances(7))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        # the whole point: one solve_many served all 8 concurrent misses
        assert calls == [[7]]
        stats = planner.stats()
        assert stats["solves"] == 1
        # every thread probed exactly once; each miss either led the one
        # flight, waited on it, or (rarely) won a retired slot and was
        # salvaged from the cache — never more than one actual solve
        assert stats["hits"] + stats["misses"] == N_THREADS
        assert 0 <= stats["single_flight_waits"] <= stats["misses"] - 1
        ref = dijkstra(g, 7).dist
        for row in rows:
            assert np.array_equal(row, ref)

    def test_single_flight_with_cache_disabled(self, monkeypatch):
        """capacity=0 stores nothing, but concurrent identical misses
        still share the in-flight row instead of re-solving."""
        g = random_connected_graph(40, 90, seed=6, weight_high=20)
        sp = PreprocessedSSSP(g, k=2, rho=6, heuristic="dp")
        calls = self._slow_solver(monkeypatch, sp)
        planner = QueryPlanner(sp, capacity=0, track_parents=True)
        barrier = threading.Barrier(N_THREADS)
        rows: list[np.ndarray] = []
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                barrier.wait()
                rows.append(planner.distances(3))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        # with no cache to salvage from, the dedup window is inherently
        # timing-based: the barrier + slow solve make one flight all but
        # certain, but a thread descheduled across the whole solve may
        # legitimately re-solve — tolerate one straggler, never a storm
        assert all(c == [3] for c in calls)
        assert len(calls) <= 2, calls
        assert planner.stats()["cached_rows"] == 0
        ref = dijkstra(g, 3).dist
        for row in rows:
            assert np.array_equal(row, ref)

    def test_exception_before_solve_releases_registered_flights(
        self, monkeypatch
    ):
        """An exception anywhere between flight registration and
        publication (not just inside solve_many) must clear the
        in-flight table — a stranded entry would block every future
        request for that source forever."""
        g = random_connected_graph(40, 90, seed=8, weight_high=20)
        sp = PreprocessedSSSP(g, k=2, rho=6, heuristic="dp")
        planner = QueryPlanner(sp, capacity=16, track_parents=True)
        real_peek = planner._peek
        armed = {"on": True}

        def flaky_peek(s):
            if armed["on"]:
                armed["on"] = False
                raise MemoryError("allocation failed mid-registration")
            return real_peek(s)

        monkeypatch.setattr(planner, "_peek", flaky_peek)
        with pytest.raises(MemoryError):
            planner.execute([SingleSource(1), SingleSource(2)])
        assert planner.stats()["inflight"] == 0
        # both sources recovered: fresh flights solve cleanly
        assert np.array_equal(planner.distances(1), dijkstra(g, 1).dist)
        assert np.array_equal(planner.distances(2), dijkstra(g, 2).dist)

    def test_failed_solve_releases_followers(self, monkeypatch):
        """A leader whose solve blows up must hand the error to every
        follower and clear the in-flight table — later queries on the
        same source must work again."""
        g = random_connected_graph(40, 90, seed=7, weight_high=20)
        sp = PreprocessedSSSP(g, k=2, rho=6, heuristic="dp")
        real = PreprocessedSSSP.solve_many
        state = {"failed": False}

        def flaky(sources, **kwargs):
            if not state["failed"]:
                state["failed"] = True
                time.sleep(0.05)
                raise RuntimeError("engine exploded")
            return real(sp, sources, **kwargs)

        monkeypatch.setattr(sp, "solve_many", flaky)
        planner = QueryPlanner(sp, capacity=16, track_parents=True)
        barrier = threading.Barrier(4)
        outcomes: list[str] = []

        def worker() -> None:
            barrier.wait()
            try:
                planner.distances(5)
                outcomes.append("ok")
            except RuntimeError as exc:
                assert "engine exploded" in str(exc)
                outcomes.append("raised")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every thread that joined the failing flight saw the error;
        # threads that probed after cleanup may have re-solved and
        # succeeded — both are correct, stranding is not
        assert outcomes.count("raised") >= 1
        assert planner.stats()["inflight"] == 0
        # the planner recovered: the source solves cleanly now
        assert np.array_equal(planner.distances(5), dijkstra(g, 5).dist)
