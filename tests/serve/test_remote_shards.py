"""Remote-shard parity and fault injection over a live ShardCluster.

The acceptance bar of the transport seam: a front-end router whose
backends fetch rows **over real HTTP sockets** must be bit-identical to
the in-process ShardRouter over the same sharded preprocessing — for
every registered engine, under both shipped partitioners.  Integer
weights make float sums exact, so parity is ``np.array_equal``, not
``allclose``.

Fault injection pins the degraded-mode contract: killing a shard server
mid-operation turns queries touching it into a *typed* failure naming
the shard — ``ShardUnavailableError`` in process, a 503 JSON body over
HTTP — within the configured deadline, never a hang.  A healthy-shard
query keeps working: degradation is per-shard, not cluster-wide.
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine.registry import available_engines, get_engine
from repro.graphs.generators import grid_2d
from repro.graphs.weights import random_integer_weights
from repro.serve import ShardCluster, ShardRouter, ShardUnavailableError

K, RHO = 2, 12
N_SHARDS = 3
PARTITIONERS = ("contiguous", "ldd")


@pytest.fixture(scope="module")
def graph():
    return random_integer_weights(grid_2d(8, 11), low=1, high=30, seed=5)


@pytest.fixture(scope="module")
def sharded(graph):
    from repro.preprocess import build_sharded_kr_graph

    return {
        part: build_sharded_kr_graph(
            graph, K, RHO, n_shards=N_SHARDS, partition=part, heuristic="dp"
        )
        for part in PARTITIONERS
    }


class TestRemoteParity:
    @pytest.mark.parametrize("partition", PARTITIONERS)
    @pytest.mark.parametrize("engine", available_engines())
    def test_every_engine_bit_identical_over_the_wire(
        self, engine, partition, graph, sharded
    ):
        if engine == "unweighted":
            pytest.skip("unit-weight engine; covered by test_unweighted_engine")
        track_parents = get_engine(engine).supports_parents
        local = ShardRouter(
            sharded=sharded[partition], engine=engine, track_parents=track_parents
        )
        with ShardCluster(
            sharded[partition], engine=engine, track_parents=track_parents
        ) as cluster:
            remote = cluster.router
            rng = np.random.default_rng(hash((engine, partition)) % 2**32)
            for s in map(int, rng.choice(graph.n, size=3, replace=False)):
                a, b = local.distances(s), remote.distances(s)
                assert a.tobytes() == b.tobytes()  # bit-identical
            for s, t in [(0, graph.n - 1), (3, graph.n // 2)]:
                a, b = local.route(s, t), remote.route(s, t)
                assert a.distance == b.distance
                assert a.path == b.path
            a, b = local.nearest(1, 6), remote.nearest(1, 6)
            assert np.array_equal(a.vertices, b.vertices)
            assert np.array_equal(a.distances, b.distances)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_unweighted_engine(self, partition):
        from repro.preprocess import build_sharded_kr_graph

        g = grid_2d(7, 9)
        sh = build_sharded_kr_graph(
            g, 1, 2, n_shards=N_SHARDS, partition=partition, heuristic="full"
        )
        local = ShardRouter(sharded=sh, engine="unweighted", track_parents=False)
        with ShardCluster(
            sh, engine="unweighted", track_parents=False
        ) as cluster:
            for s in (0, 30, g.n - 1):
                assert np.array_equal(
                    local.distances(s), cluster.router.distances(s)
                )

    def test_http_front_end_round_trip(self, graph, sharded):
        """The full three-hop path: client JSON -> front end -> binary
        row fetches -> stitched JSON answer."""
        local = ShardRouter(sharded=sharded["ldd"])
        with ShardCluster(sharded["ldd"]) as cluster:
            with urllib.request.urlopen(
                f"{cluster.url}/distances/5", timeout=10
            ) as resp:
                doc = json.loads(resp.read())
            want = local.distances(5)
            got = np.array(
                [np.inf if d is None else d for d in doc["distances"]]
            )
            assert np.array_equal(got, want)
            st = json.loads(
                urllib.request.urlopen(f"{cluster.url}/stats", timeout=10).read()
            )
            assert len(st["backends"]) == N_SHARDS
            assert all(row["kind"] == "remote" for row in st["backends"])
            assert st["shards"] == N_SHARDS


class TestFaultInjection:
    @pytest.fixture()
    def cluster(self, sharded):
        with ShardCluster(
            sharded["contiguous"], timeout=1.0, retries=1, backoff=0.02
        ) as c:
            yield c

    def _shard_of(self, cluster, shard):
        """Some vertex owned by ``shard``."""
        return int(np.flatnonzero(cluster.router.topology_info.labels == shard)[0])

    def test_killed_shard_yields_typed_503_within_deadline(self, cluster):
        victim = 1
        cluster.shard_servers[victim].close()
        source = self._shard_of(cluster, 0)  # stitching still needs shard 1
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(
                f"{cluster.url}/distances/{source}", timeout=30
            ) as resp:
                pytest.fail(f"expected 503, got 200: {resp.read()[:100]!r}")
        except urllib.error.HTTPError as exc:
            elapsed = time.perf_counter() - t0
            doc = json.loads(exc.read())
            assert exc.code == 503
            assert doc["error"] == "ShardUnavailable"
            assert doc["shard"] == victim
            assert doc["endpoint"] == cluster.shard_urls[victim]
            # deadline + retry budget, with slack — never a hang
            assert elapsed < 15.0

    def test_killed_shard_raises_in_process(self, cluster):
        victim = 2
        cluster.shard_servers[victim].close()
        source = self._shard_of(cluster, 0)
        with pytest.raises(ShardUnavailableError) as exc:
            cluster.router.distances(source)
        assert exc.value.shard == victim
        health = cluster.router.healthz()
        assert health["status"] == "degraded"
        assert victim in health["backends"]["unhealthy"]
        st = cluster.router.stats()
        row = st["backends"][victim]
        assert row["healthy"] is False and row["consecutive_failures"] >= 1
        assert st["per_shard"][victim]["unavailable"] is True

    def test_cached_stitches_survive_a_dead_shard(self, cluster):
        """Rows stitched before the failure keep serving from the
        router's LRU — a dead shard degrades *new* work only."""
        source = self._shard_of(cluster, 0)
        before = cluster.router.distances(source)
        cluster.shard_servers[1].close()
        after = cluster.router.distances(source)
        assert np.array_equal(before, after)

    def test_slow_shard_bounded_by_deadline(self, sharded):
        """A shard that stalls past the deadline surfaces as typed
        unavailability in bounded time, not a pinned thread."""
        with ShardCluster(
            sharded["contiguous"], timeout=0.4, retries=0, backoff=0.01
        ) as cluster:
            victim = 1
            backend = cluster.router.backends[victim]
            service = cluster.shard_servers[victim].service

            original = service.batch

            def stalled(queries):
                time.sleep(2.0)  # well past the 0.4s deadline
                return original(queries)

            service.batch = stalled
            try:
                source = self._shard_of(cluster, 0)
                t0 = time.perf_counter()
                with pytest.raises(ShardUnavailableError) as exc:
                    cluster.router.distances(source)
                elapsed = time.perf_counter() - t0
                assert exc.value.shard == victim
                assert "timed out" in exc.value.reason
                assert elapsed < 1.8  # ~timeout, never the shard's stall
                assert not backend.healthy
            finally:
                service.batch = original
