"""Id-transparent serving over a reordered graph.

A service built with ``reorder=...`` must be observationally identical
to one built without: every distance row bit-identical, every route a
valid path in the *input* graph realizing the same distance, every
k-nearest listing equal.  The reordering may only change speed.
"""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.engine.registry import available_engines, get_engine
from repro.serve import KNearest, RoutingService, solve_many_shm

from tests.helpers import random_connected_graph

K, RHO = 2, 8


def _assert_valid_external_parents(solver, dist, parent, source):
    """Externalized parents must realize every distance through an edge
    of the solver's (internal, augmented) graph: shortcut edges are
    legitimate hops, so validation maps each external pair back through
    the permutation before the edge lookup."""
    perm = solver.perm
    aug = solver.graph
    for v in range(len(dist)):
        p = int(parent[v])
        if v == source or not np.isfinite(dist[v]):
            assert p == -1
            continue
        assert p >= 0, f"reachable vertex {v} lacks a parent"
        pi, vi = (p, v) if perm is None else (int(perm[p]), int(perm[v]))
        w = aug.edge_weight(pi, vi)
        assert dist[p] + w == dist[v], (
            f"parent edge ({p}->{v}) does not realize dist"
        )


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(80, 190, seed=51, weight_high=30)


@pytest.fixture(scope="module")
def pair(graph):
    base = PreprocessedSSSP(graph, k=K, rho=RHO)
    re = PreprocessedSSSP(graph, k=K, rho=RHO, reorder="rcm")
    return base, re


class TestSolverBoundary:
    def test_preprocessing_carries_maps(self, pair):
        _base, re = pair
        pre = re.preprocessing
        assert pre.reorder == "rcm"
        assert np.array_equal(np.sort(pre.perm), np.arange(len(pre.perm)))
        assert np.array_equal(pre.inv_perm[pre.perm], np.arange(len(pre.perm)))
        assert pre.locality_after < pre.locality_before

    def test_source_hash_is_input_graph(self, graph, pair):
        _base, re = pair
        assert re.preprocessing.source_hash == graph.content_hash()

    @pytest.mark.parametrize("engine", available_engines())
    def test_solve_bit_identical_per_engine(self, graph, pair, engine):
        base, re = pair
        if engine == "unweighted":
            pytest.skip("unit-weight engine; graph is weighted")
        tp = get_engine(engine).supports_parents
        for s in (0, 17, 63):
            a = base.solve(s, engine=engine, track_parents=tp)
            b = re.solve(s, engine=engine, track_parents=tp)
            assert np.array_equal(a.dist, b.dist)
            if tp:
                _assert_valid_external_parents(re, b.dist, b.parent, s)

    def test_parent_minus_one_preserved(self, graph, pair):
        """Unreachable/-root sentinels must come back as -1, never as a
        wrongly-translated id."""
        _base, re = pair
        res = re.solve(9, track_parents=True)
        assert res.parent[9] == -1

    def test_solve_many_matches(self, pair):
        base, re = pair
        for a, b in zip(base.solve_many([2, 40, 2, 77]), re.solve_many([2, 40, 2, 77])):
            assert np.array_equal(a.dist, b.dist)

    def test_solve_many_parallel_workers(self, pair):
        base, re = pair
        got = re.solve_many([1, 30, 66], n_jobs=2, track_parents=True)
        want = base.solve_many([1, 30, 66])
        for a, b in zip(want, got):
            assert np.array_equal(a.dist, b.dist)


class TestSharedMemory:
    def test_distance_matrix_rows_external(self, graph, pair):
        base, re = pair
        sources = [4, 21, 50]
        with solve_many_shm(re, sources, track_parents=True, n_jobs=2) as dm:
            for i, s in enumerate(sources):
                assert np.array_equal(dm.dist[i], base.solve(s).dist)
                _assert_valid_external_parents(re, dm.dist[i], dm.parent[i], s)


class TestService:
    @pytest.fixture(scope="class")
    def services(self, graph):
        return (
            RoutingService(graph, k=K, rho=RHO, cache_capacity=16),
            RoutingService(graph, k=K, rho=RHO, reorder="bfs", cache_capacity=16),
        )

    def test_distances_rows_equal(self, services):
        plain, re = services
        for s in (0, 33, 79):
            assert np.array_equal(plain.distances(s), re.distances(s))

    def test_routes_equal_distance_and_valid(self, graph, services):
        plain, re = services
        for s, t in ((0, 70), (12, 45), (79, 3)):
            a, b = plain.route(s, t), re.route(s, t)
            assert a.distance == b.distance
            assert b.path is not None
            assert b.path[0] == s and b.path[-1] == t
            # every hop is an input-graph edge (or preprocessing
            # shortcut realizing an exact subpath); the summed length
            # must reproduce the distance exactly via dijkstra check
            assert b.distance == dijkstra(graph, s).dist[t]

    def test_nearest_equal(self, services):
        plain, re = services
        a, b = plain.nearest(7, 9), re.nearest(7, 9)
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.distances, b.distances)

    def test_batch_coalesced_equal(self, services):
        plain, re = services
        queries = [(2, 60), KNearest(2, 4), 44, (60, 2)]
        got = re.batch(queries)
        want = plain.batch(queries)
        assert got[0].distance == want[0].distance
        assert np.array_equal(got[1].vertices, want[1].vertices)
        assert np.array_equal(got[2], want[2])
        assert got[3].distance == want[3].distance

    def test_stats_surface_reorder(self, services):
        _plain, re = services
        stats = re.stats()
        assert stats["reorder"] == "bfs"
        assert stats["locality"]["after"] < stats["locality"]["before"]

    def test_warm_then_hit(self, services):
        _plain, re = services
        re.warm([5, 6])
        before = re.stats()["hits"]
        re.distances(5)
        assert re.stats()["hits"] == before + 1


class TestArtifactRoundTrip:
    def test_save_load_serve_equal(self, graph, tmp_path):
        svc = RoutingService(graph, k=K, rho=RHO, reorder="rcm")
        path = tmp_path / "re.npz"
        svc.save_artifact(path)
        warm = RoutingService.from_artifact(path, expect_graph=graph)
        plain = RoutingService(graph, k=K, rho=RHO)
        for s in (0, 41):
            assert np.array_equal(warm.distances(s), plain.distances(s))
        assert warm.stats()["reorder"] == "rcm"

    def test_from_artifact_rejects_reorder_kwarg(self, graph, tmp_path):
        svc = RoutingService(graph, k=K, rho=RHO, reorder="rcm")
        path = tmp_path / "re.npz"
        svc.save_artifact(path)
        with pytest.raises(TypeError, match="artifact fixes the preprocessing"):
            RoutingService.from_artifact(path, expect_graph=graph, reorder="bfs")


class TestHttp:
    def test_http_answers_in_input_ids(self, graph):
        """The whole stack: HTTP front end over a reordered service
        answers identically to an unreordered one."""
        import json
        import urllib.request

        from repro.serve.http import RoutingHTTPServer

        plain = RoutingService(graph, k=K, rho=RHO, cache_capacity=8)
        re = RoutingService(graph, k=K, rho=RHO, reorder="rcm", cache_capacity=8)
        answers = []
        for svc in (plain, re):
            with RoutingHTTPServer(svc) as server:
                with urllib.request.urlopen(f"{server.url}/route/3/55") as resp:
                    answers.append(json.loads(resp.read()))
                with urllib.request.urlopen(f"{server.url}/stats") as resp:
                    stats = json.loads(resp.read())
        assert answers[0]["distance"] == answers[1]["distance"]
        assert answers[0]["path"][0] == answers[1]["path"][0] == 3
        assert stats["reorder"] == "rcm"  # stats of the reordered server
