"""RoutingService facade: cold/warm construction, queries, stats."""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.serve import (
    ArtifactGraphMismatchError,
    KNearest,
    RoutingService,
)

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(60, 140, seed=29, weight_high=30)


@pytest.fixture(scope="module")
def service(graph):
    return RoutingService(graph, k=2, rho=8, cache_capacity=16)


class TestConstruction:
    def test_requires_graph_or_solver(self):
        with pytest.raises(ValueError, match="graph or a solver"):
            RoutingService()

    def test_warm_start_round_trip(self, graph, service, tmp_path):
        path = tmp_path / "svc.npz"
        service.save_artifact(path)
        warm = RoutingService.from_artifact(
            path, expect_graph=graph, cache_capacity=16
        )
        for s in (0, 11, 37):
            assert np.array_equal(warm.distances(s), service.distances(s))
        assert warm.stats()["rho"] == service.stats()["rho"]

    def test_from_artifact_rejects_wrong_graph(self, service, tmp_path):
        path = tmp_path / "svc.npz"
        service.save_artifact(path)
        other = random_connected_graph(60, 140, seed=77)
        with pytest.raises(ArtifactGraphMismatchError):
            RoutingService.from_artifact(path, expect_graph=other)

    def test_from_artifact_rejects_preprocessing_knobs(
        self, graph, service, tmp_path
    ):
        """k/rho/heuristic would be silently ignored (the artifact fixes
        the preprocessing) — they must be rejected, not swallowed."""
        path = tmp_path / "svc.npz"
        service.save_artifact(path)
        with pytest.raises(TypeError, match="artifact fixes the preprocessing"):
            RoutingService.from_artifact(path, expect_graph=graph, k=4)
        with pytest.raises(TypeError, match="rebuild"):
            RoutingService.from_artifact(
                path, expect_graph=graph, heuristic="greedy"
            )


class TestQueries:
    def test_distances(self, graph, service):
        assert np.array_equal(service.distances(3), dijkstra(graph, 3).dist)

    def test_default_config_works_on_unit_weight_graphs(self):
        """auto would pick the parentless §3.4 engine on a unit-weight
        augmented graph; the default track_parents=True service must
        fall back to the general engine instead of failing queries."""
        from repro.graphs.generators import grid_2d

        g = grid_2d(6, 6)
        svc = RoutingService(g, k=2, rho=4)
        route = svc.route(0, 5)
        assert route.distance == dijkstra(g, 0).dist[5]
        assert route.path is not None
        assert svc.stats()["engine"] == "vectorized"

    def test_explicit_parentless_engine_rejected_at_construction(self):
        from repro.graphs.generators import grid_2d
        from repro.serve import QueryPlanner
        from repro.core.solver import PreprocessedSSSP

        sp = PreprocessedSSSP(grid_2d(5, 5), k=1, rho=2, heuristic="full")
        with pytest.raises(ValueError, match="does not track parents"):
            QueryPlanner(sp, engine="unweighted", track_parents=True)

    def test_route(self, graph, service):
        route = service.route(3, 50)
        assert route.distance == dijkstra(graph, 3).dist[50]
        assert route.path is not None  # service tracks parents by default

    def test_nearest(self, graph, service):
        near = service.nearest(8, 4)
        assert np.array_equal(near.distances, np.sort(dijkstra(graph, 8).dist)[1:5])

    def test_batch_mixed(self, graph, service):
        answers = service.batch([(2, 9), 2, KNearest(2, 3)])
        ref = dijkstra(graph, 2).dist
        assert answers[0].distance == ref[9]
        assert np.array_equal(answers[1], ref)
        assert len(answers[2].vertices) == 3

    def test_distance_matrix_parity(self, graph, service):
        sources = [0, 5, 5, 19]
        with service.distance_matrix(sources, n_jobs=2) as dm:
            for i, s in enumerate(sources):
                assert np.array_equal(dm.dist[i], dijkstra(graph, s).dist)

    def test_warm_sources(self, service):
        service.warm([40, 41])
        before = service.stats()["solves"]
        service.distances(40)
        assert service.stats()["solves"] == before


class TestStats:
    def test_stats_surface(self, graph):
        svc = RoutingService(graph, k=2, rho=8, cache_capacity=4)
        svc.distances(0)
        svc.route(0, 5)
        s = svc.stats()
        assert s["n"] == graph.n
        assert s["k"] == 2 and s["rho"] == 8
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["queries_answered"] >= 1
        assert s["engine"] in ("vectorized", "unweighted")
        assert s["cached_rows"] == 1
