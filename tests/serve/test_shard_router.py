"""Cross-shard parity: the ShardRouter must be bit-identical to the
unsharded RoutingService.

The acceptance bar of the sharded refactor: for **every registered
engine**, under **both shipped partitioners**, on **three graph
families** with integer weights (float sums of integers < 2⁵³ are exact,
so "exact metric" means *bit-identical*), the stitched answers equal the
single-graph service's — full rows with ``np.array_equal``, routes with
``==`` on distances, k-nearest with identical vertex and distance
arrays.  Queries whose shortest paths cross two or more shard
boundaries are exercised explicitly, since those are the ones the
overlay stitching exists for.

Sharded preprocessing is cached per (family, partitioner) at module
scope; per-test work is planner construction plus a handful of queries.
"""

import numpy as np
import pytest

from repro.core.dijkstra import dijkstra
from repro.core.result import parent_path
from repro.engine.registry import available_engines, get_engine
from repro.graphs.generators import grid_2d, small_world
from repro.graphs.weights import random_integer_weights
from repro.serve import RoutingService, ShardRouter

from tests.helpers import random_connected_graph

K, RHO = 2, 12
N_SHARDS = 4

FAMILIES = {
    "grid": lambda: random_integer_weights(grid_2d(9, 12), low=1, high=30, seed=1),
    "small-world": lambda: random_integer_weights(
        small_world(104, 4, seed=2), low=1, high=30, seed=3
    ),
    "sparse-random": lambda: random_connected_graph(
        110, 240, seed=4, weight_high=30
    ),
}
PARTITIONERS = ("contiguous", "ldd")


@pytest.fixture(scope="module")
def graphs():
    return {name: make() for name, make in FAMILIES.items()}


@pytest.fixture(scope="module")
def solvers(graphs):
    """One unsharded preprocessing per family (shared by every engine)."""
    from repro.core.solver import PreprocessedSSSP

    return {
        name: PreprocessedSSSP(g, k=K, rho=RHO, heuristic="dp")
        for name, g in graphs.items()
    }


@pytest.fixture(scope="module")
def sharded(graphs):
    """One sharded preprocessing per (family, partitioner)."""
    from repro.preprocess import build_sharded_kr_graph

    out = {}
    for name, g in graphs.items():
        for part in PARTITIONERS:
            out[name, part] = build_sharded_kr_graph(
                g, K, RHO, n_shards=N_SHARDS, partition=part, heuristic="dp"
            )
    return out


def _crossing_pairs(graph, labels, want=3):
    """(s, t) pairs whose shortest path crosses >= 2 shard boundaries,
    found by walking dijkstra parent chains on the *input* graph."""
    pairs = []
    for s in range(0, graph.n, 7):
        res = dijkstra(graph, s, track_parents=True)
        for t in range(graph.n - 1, -1, -13):
            if not np.isfinite(res.dist[t]) or t == s:
                continue
            path = parent_path(res.parent, t)
            crossings = sum(
                1
                for a, b in zip(path, path[1:])
                if labels[a] != labels[b]
            )
            if crossings >= 2:
                pairs.append((s, t))
                break
        if len(pairs) >= want:
            break
    return pairs


@pytest.mark.parametrize("partition", PARTITIONERS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("engine", available_engines())
class TestEveryEngineParity:
    def test_rows_routes_nearest_bit_identical(
        self, engine, family, partition, graphs, solvers, sharded
    ):
        if engine == "unweighted":
            pytest.skip("unit-weight engine; covered by TestUnitWeightFamily")
        g = graphs[family]
        track_parents = get_engine(engine).supports_parents
        service = RoutingService(
            solver=solvers[family], engine=engine, track_parents=track_parents
        )
        router = ShardRouter(
            sharded=sharded[family, partition],
            engine=engine,
            track_parents=track_parents,
        )
        rng = np.random.default_rng(hash((engine, family, partition)) % 2**32)
        sources = rng.choice(g.n, size=3, replace=False)
        for s in map(int, sources):
            assert np.array_equal(service.distances(s), router.distances(s))
        for s, t in [(0, g.n - 1), (3, g.n // 2)]:
            a, b = service.route(s, t), router.route(s, t)
            assert a.distance == b.distance
            if track_parents and np.isfinite(b.distance):
                assert b.path is not None
                assert b.path[0] == s and b.path[-1] == t
        for s in (1, g.n - 2):
            a, b = service.nearest(s, 6), router.nearest(s, 6)
            assert np.array_equal(a.vertices, b.vertices)
            assert np.array_equal(a.distances, b.distances)


@pytest.mark.parametrize("partition", PARTITIONERS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestMultiBoundaryCrossing:
    def test_queries_crossing_two_plus_boundaries(
        self, family, partition, graphs, sharded
    ):
        """The stitching path the overlay exists for: shortest paths
        that traverse at least two shard boundaries."""
        g = graphs[family]
        sh = sharded[family, partition]
        pairs = _crossing_pairs(g, sh.labels)
        assert pairs, "graph families must admit multi-crossing queries"
        router = ShardRouter(sharded=sh)
        for s, t in pairs:
            ref = dijkstra(g, s).dist
            got = router.route(s, t)
            assert got.distance == ref[t]
            assert np.array_equal(router.distances(s), ref)

    def test_stitched_path_telescopes_exactly(
        self, family, partition, graphs, sharded
    ):
        """Every hop of a stitched path is a composite edge whose weight
        is the exact input-graph distance between its endpoints, and the
        hop distances telescope to the route distance."""
        g = graphs[family]
        sh = sharded[family, partition]
        pairs = _crossing_pairs(g, sh.labels, want=1)
        router = ShardRouter(sharded=sh)
        s, t = pairs[0]
        route = router.route(s, t)
        assert route.path is not None
        total = 0.0
        for u, v in zip(route.path, route.path[1:]):
            total += dijkstra(g, int(u)).dist[v]
        assert total == route.distance


class TestUnitWeightFamily:
    """The §3.4 unit-weight engine, on a preprocessing whose augmented
    graph stays unit-weight (k=1, tiny rho, full heuristic)."""

    def setup_method(self):
        self.g = grid_2d(8, 10)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_unweighted_engine_parity(self, partition):
        from repro.preprocess import build_sharded_kr_graph

        sh = build_sharded_kr_graph(
            self.g, 1, 2, n_shards=3, partition=partition, heuristic="full"
        )
        router = ShardRouter(sharded=sh, engine="unweighted", track_parents=False)
        service = RoutingService(
            self.g, k=1, rho=2, heuristic="full",
            engine="unweighted", track_parents=False,
        )
        for s in (0, 37, 79):
            assert np.array_equal(service.distances(s), router.distances(s))


class TestRouterSurface:
    """Router-specific surface behavior beyond raw parity."""

    @pytest.fixture(scope="class")
    def pair(self, graphs, sharded):
        g = graphs["grid"]
        return g, ShardRouter(sharded=sharded["grid", "contiguous"])

    def test_batch_matches_individual_queries(self, pair):
        from repro.serve import KNearest

        g, router = pair
        answers = router.batch([(0, g.n - 1), 5, KNearest(7, 4)])
        assert answers[0].distance == router.route(0, g.n - 1).distance
        assert np.array_equal(answers[1], router.distances(5))
        assert np.array_equal(answers[2].vertices, router.nearest(7, 4).vertices)

    def test_validation_mirrors_planner(self, pair):
        g, router = pair
        with pytest.raises(ValueError):
            router.distances(-1)
        with pytest.raises(ValueError):
            router.distances(g.n)
        with pytest.raises(TypeError):
            router.distances(True)
        with pytest.raises(TypeError):
            router.nearest(0, 2.5)
        with pytest.raises(ValueError):
            router.nearest(0, -1)

    def test_warm_and_stitched_cache(self, graphs, sharded):
        g = graphs["grid"]
        router = ShardRouter(sharded=sharded["grid", "contiguous"])
        router.warm([0, 1, 2])
        before = router.stats()["stitched"]
        assert before["misses"] >= 3
        router.distances(1)  # cached
        after = router.stats()["stitched"]
        assert after["hits"] == before["hits"] + 1

    def test_stats_topology(self, pair):
        g, router = pair
        stats = router.stats()
        assert stats["shards"] == N_SHARDS
        assert stats["partition"] == "contiguous"
        assert len(stats["topology"]["shards"]) == N_SHARDS
        assert (
            sum(s["vertices"] for s in stats["topology"]["shards"]) == g.n
        )
        assert all(s["boundary"] >= 1 for s in stats["topology"]["shards"])
        health = router.healthz()
        assert health["status"] == "ok" and health["shards"] == N_SHARDS

    def test_stats_backends_table_local_mode(self, pair):
        """The backend seam is visible even fully in process: one
        'local' row per shard, healthy, zero failures."""
        _g, router = pair
        router.distances(0)  # at least one fetch recorded somewhere
        table = router.stats()["backends"]
        assert len(table) == N_SHARDS
        for s, row in enumerate(table):
            assert row["shard"] == s
            assert row["kind"] == "local"
            assert row["endpoint"] is None
            assert row["healthy"] is True
            assert row["consecutive_failures"] == 0
            assert row["failures_total"] == 0
        assert sum(row["row_fetches"] for row in table) >= 1

    def test_read_only_rows(self, pair):
        _g, router = pair
        row = router.distances(0)
        with pytest.raises(ValueError):
            row[0] = 1.0

    def test_single_shard_degenerates_to_service(self, graphs):
        """n_shards=1: no overlay, still exact."""
        g = graphs["small-world"]
        router = ShardRouter(g, n_shards=1, k=K, rho=RHO)
        assert router.n_shards == 1
        ref = dijkstra(g, 11).dist
        assert np.array_equal(router.distances(11), ref)

    def test_cold_start_requires_shard_count(self, graphs):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(graphs["grid"])
        with pytest.raises(ValueError, match="graph or a sharded"):
            ShardRouter()
