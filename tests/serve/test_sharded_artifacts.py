"""Sharded bundle persistence: round-trip, mmap, and member corruption.

The bundle is a directory — a checksummed manifest referencing one v3
artifact per shard plus the overlay and topology members.  The
acceptance bar: save → load → mmap-load round-trips to identical
serving answers, and corrupting *any* member (a shard artifact, the
overlay, the topology, the manifest itself) is detected as
:class:`ArtifactCorruptError` before anything is served.
"""

import json

import numpy as np
import pytest

from repro.preprocess import build_sharded_kr_graph
from repro.serve import (
    ArtifactCorruptError,
    ArtifactGraphMismatchError,
    ArtifactVersionError,
    ShardRouter,
    load_sharded_artifact,
    save_sharded_artifact,
)

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(90, 200, seed=21, weight_high=40)


@pytest.fixture(scope="module")
def sharded(graph):
    return build_sharded_kr_graph(graph, 2, 10, n_shards=3, partition="ldd")


@pytest.fixture()
def bundle(tmp_path, sharded):
    path = tmp_path / "bundle"
    save_sharded_artifact(path, sharded)
    return path


def _flip_byte(path, offset=-100):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestRoundTrip:
    def test_record_round_trips(self, bundle, sharded, graph):
        back = load_sharded_artifact(bundle, expect_graph=graph)
        assert back.n_shards == sharded.n_shards
        assert np.array_equal(back.labels, sharded.labels)
        assert np.array_equal(back.overlay_vertices, sharded.overlay_vertices)
        assert np.array_equal(
            back.overlay_graph.weights, sharded.overlay_graph.weights
        )
        assert (back.k, back.rho, back.heuristic) == (
            sharded.k,
            sharded.rho,
            sharded.heuristic,
        )
        assert back.partition_method == sharded.partition_method
        assert back.edge_cut == sharded.edge_cut
        assert back.source_hash == graph.content_hash()
        for s in range(back.n_shards):
            assert np.array_equal(
                back.shard_vertices[s], sharded.shard_vertices[s]
            )
            assert np.array_equal(
                back.shards[s].graph.weights, sharded.shards[s].graph.weights
            )
            assert np.array_equal(back.shards[s].radii, sharded.shards[s].radii)

    def test_served_answers_identical(self, bundle, sharded, graph):
        fresh = ShardRouter(sharded=sharded)
        warm = ShardRouter.from_artifact(bundle, expect_graph=graph)
        for s in (0, 33, 88):
            assert np.array_equal(fresh.distances(s), warm.distances(s))
        a, b = fresh.route(0, 88), warm.route(0, 88)
        assert a.distance == b.distance and a.path == b.path

    def test_save_method_on_result(self, tmp_path, sharded):
        path = sharded.save(tmp_path / "via-method")
        loaded = load_sharded_artifact(tmp_path / "via-method")
        assert loaded.n_shards == sharded.n_shards

    @staticmethod
    def _is_mapped(arr) -> bool:
        # the CSR constructor may wrap the memmap in a base-class view
        while arr is not None:
            if isinstance(arr, np.memmap):
                return True
            arr = arr.base
        return False

    def test_mmap_round_trip(self, bundle, sharded):
        back = load_sharded_artifact(bundle, mmap=True)
        for s in range(back.n_shards):
            assert self._is_mapped(back.shards[s].graph.weights)
        fresh = ShardRouter(sharded=sharded)
        warm = ShardRouter.from_artifact(bundle, mmap=True)
        for s in (5, 47):
            assert np.array_equal(fresh.distances(s), warm.distances(s))

    def test_missing_bundle_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sharded_artifact(tmp_path / "nope")


class TestIntegrity:
    @pytest.mark.parametrize(
        "member", ["shard_0001.npz", "overlay.npz", "topology.npz"]
    )
    def test_member_corruption_detected(self, bundle, member):
        _flip_byte(bundle / member)
        with pytest.raises(ArtifactCorruptError):
            load_sharded_artifact(bundle)

    def test_missing_member_detected(self, bundle):
        (bundle / "shard_0002.npz").unlink()
        with pytest.raises(ArtifactCorruptError, match="missing member"):
            load_sharded_artifact(bundle)

    def test_manifest_edit_detected(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["edge_cut"] = 0
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError, match="manifest checksum"):
            load_sharded_artifact(bundle)

    def test_manifest_garbage_detected(self, bundle):
        (bundle / "manifest.json").write_text("not json{")
        with pytest.raises(ArtifactCorruptError, match="JSON"):
            load_sharded_artifact(bundle)

    def test_wrong_format_detected(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["format"] = "something-else"
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError, match="manifest"):
            load_sharded_artifact(bundle)

    def test_future_version_rejected(self, bundle):
        from repro.serve.artifacts import _manifest_hash

        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["version"] = 99
        manifest["manifest_hash"] = _manifest_hash(manifest)
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactVersionError):
            load_sharded_artifact(bundle)

    def test_graph_mismatch_detected(self, bundle):
        other = random_connected_graph(40, 90, seed=99)
        with pytest.raises(ArtifactGraphMismatchError):
            load_sharded_artifact(bundle, expect_graph=other)

    def test_swapped_members_detected(self, bundle):
        """Two members swapped on disk: both file hashes mismatch."""
        a = (bundle / "shard_0000.npz").read_bytes()
        b = (bundle / "shard_0001.npz").read_bytes()
        (bundle / "shard_0000.npz").write_bytes(b)
        (bundle / "shard_0001.npz").write_bytes(a)
        with pytest.raises(ArtifactCorruptError):
            load_sharded_artifact(bundle)

    def test_from_artifact_rejects_baked_knobs(self, bundle):
        with pytest.raises(TypeError, match="does not accept"):
            ShardRouter.from_artifact(bundle, k=3)
        with pytest.raises(TypeError, match="does not accept"):
            ShardRouter.from_artifact(bundle, partition="ldd")
