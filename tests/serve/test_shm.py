"""Shared-memory batch path: bit-identity with the pickle path.

The acceptance bar for the zero-copy output path is absolute: for every
engine in the registry, ``solve_many_shm`` must reproduce the pickled
``solve_many`` results bit for bit — distances, parents, and the
per-row instrumentation.
"""

import gc
import warnings
import weakref
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.engine import available_engines, get_engine
from repro.graphs.generators import grid_2d
from repro.serve import DistanceMatrix, solve_many_shm

from tests.helpers import random_connected_graph

SOURCES = [0, 9, 27, 9, 41, 0]  # duplicates on purpose


@pytest.fixture(scope="module")
def weighted_solver():
    g = random_connected_graph(60, 140, seed=31, weight_high=30)
    return g, PreprocessedSSSP(g, k=2, rho=10, heuristic="dp")


@pytest.fixture(scope="module")
def unit_solver():
    """rho small enough that every shortcut weight stays 1 — keeps the
    augmented graph unit-weight so the §3.4 engine is applicable."""
    sp = PreprocessedSSSP(grid_2d(7, 7), k=1, rho=2, heuristic="full")
    assert sp.graph.is_unweighted
    return sp


class TestParityEveryEngine:
    @pytest.mark.parametrize("engine", available_engines())
    def test_bit_identical_to_pickle_path(
        self, engine, weighted_solver, unit_solver
    ):
        if engine == "unweighted":
            sp = unit_solver
        else:
            _, sp = weighted_solver
        track_parents = get_engine(engine).supports_parents
        expected = sp.solve_many(SOURCES, engine=engine, track_parents=track_parents)
        with solve_many_shm(
            sp, SOURCES, engine=engine, track_parents=track_parents
        ) as dm:
            assert dm.sources.tolist() == SOURCES
            for i, res in enumerate(expected):
                assert np.array_equal(dm.dist[i], res.dist)
                if track_parents:
                    assert np.array_equal(dm.parent[i], res.parent)
                got = dm.result(i)
                assert np.array_equal(got.dist, res.dist)
                assert (got.steps, got.substeps, got.max_substeps) == (
                    res.steps,
                    res.substeps,
                    res.max_substeps,
                )
                assert got.relaxations == res.relaxations
                assert got.algorithm == res.algorithm
                assert got.params == res.params

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_worker_count_invariant(self, weighted_solver, n_jobs):
        g, sp = weighted_solver
        with solve_many_shm(sp, SOURCES, n_jobs=n_jobs) as dm:
            for i, s in enumerate(SOURCES):
                assert np.array_equal(dm.dist[i], dijkstra(g, s).dist)

    def test_parallel_bitwise_equals_serial(self, weighted_solver):
        _, sp = weighted_solver
        with solve_many_shm(sp, SOURCES, n_jobs=1) as a, solve_many_shm(
            sp, SOURCES, n_jobs=4
        ) as b:
            assert np.array_equal(a.dist, b.dist)
            assert np.array_equal(a.steps, b.steps)
            assert np.array_equal(a.relaxations, b.relaxations)


class TestDedupAndOrder:
    def test_duplicate_rows_identical(self, weighted_solver):
        _, sp = weighted_solver
        with solve_many_shm(sp, [5, 12, 5, 5], track_parents=True) as dm:
            assert np.array_equal(dm.dist[0], dm.dist[2])
            assert np.array_equal(dm.dist[0], dm.dist[3])
            assert np.array_equal(dm.parent[0], dm.parent[2])
            assert dm.steps[0] == dm.steps[2] == dm.steps[3]
            assert not np.array_equal(dm.dist[0], dm.dist[1])

    def test_rows_follow_input_order(self, weighted_solver):
        g, sp = weighted_solver
        order = [41, 0, 27]
        with solve_many_shm(sp, order) as dm:
            for i, s in enumerate(order):
                assert dm.result(i).params["source"] == s
                assert np.array_equal(dm.dist[i], dijkstra(g, s).dist)

    def test_empty_batch(self, weighted_solver):
        _, sp = weighted_solver
        with solve_many_shm(sp, []) as dm:
            assert len(dm) == 0
            assert dm.dist.shape == (0, sp.graph.n)


class TestLifecycle:
    def test_segment_freed_on_context_exit(self, weighted_solver):
        _, sp = weighted_solver
        with solve_many_shm(sp, [0, 9]) as dm:
            name = dm.name
            attached = shared_memory.SharedMemory(name=name)
            attached.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_manual_close_unlink(self, weighted_solver):
        _, sp = weighted_solver
        dm = solve_many_shm(sp, [0])
        name = dm.name
        dm.close()
        dm.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_results_survive_unlink(self, weighted_solver):
        """result() copies are independent of the segment lifetime."""
        g, sp = weighted_solver
        with solve_many_shm(sp, [9]) as dm:
            res = dm.result(0)
        assert np.array_equal(res.dist, dijkstra(g, 9).dist)

    def test_dropped_matrix_reclaims_segment_with_warning(self):
        """Regression: a matrix dropped without close()/unlink() used to
        leak its segment until interpreter exit.  The weakref.finalize
        safety net must reclaim it at GC time and warn."""
        dm = DistanceMatrix(np.array([0, 1]), 16, track_parents=True)
        name = dm.name
        with pytest.warns(ResourceWarning, match="dropped without"):
            del dm
            gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_dropped_after_close_still_reclaims(self):
        """close() without unlink() detaches the mapping but leaves the
        segment alive system-wide — the net must still free it."""
        dm = DistanceMatrix(np.array([4]), 8)
        name = dm.name
        dm.close()
        attached = shared_memory.SharedMemory(name=name)  # still exists
        attached.close()
        with pytest.warns(ResourceWarning):
            del dm
            gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_proper_lifecycle_does_not_warn(self, weighted_solver):
        """The context-manager / close+unlink paths detach the finalizer
        — no ResourceWarning for well-behaved owners."""
        _, sp = weighted_solver
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with solve_many_shm(sp, [0, 9]) as dm:
                ref = weakref.ref(dm)
            del dm
            gc.collect()
        assert ref() is None

    def test_failed_solve_frees_segment(self, weighted_solver, monkeypatch):
        """An engine blowing up mid-batch must not leak the segment."""
        _, sp = weighted_solver
        import repro.serve.shm as shm_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(shm_mod, "parallel_map_shared", boom)
        before = sp.queries_answered
        with pytest.raises(RuntimeError, match="engine exploded"):
            solve_many_shm(sp, [0, 9])
        assert sp.queries_answered == before + 2  # charged before the failure


class TestValidation:
    def test_unknown_engine_rejected_before_allocation(self, weighted_solver):
        _, sp = weighted_solver
        with pytest.raises(ValueError, match="registered engines"):
            solve_many_shm(sp, [0], engine="quantum")

    def test_parent_support_enforced(self, weighted_solver):
        _, sp = weighted_solver
        with pytest.raises(ValueError, match="does not track parents"):
            solve_many_shm(sp, [0], engine="bst", track_parents=True)

    def test_charges_query_counter(self):
        g = random_connected_graph(25, 60, seed=2)
        sp = PreprocessedSSSP(g, k=1, rho=4, heuristic="full")
        with solve_many_shm(sp, [0, 1, 0]):
            pass
        assert sp.queries_answered == 3


class TestDistanceMatrix:
    def test_unwritten_rows_read_unreachable(self):
        """Construction initializes deterministically: inf distances,
        -1 parents."""
        dm = DistanceMatrix(np.array([3, 4]), 5, track_parents=True)
        try:
            assert np.isinf(dm.dist).all()
            assert (dm.parent == -1).all()
        finally:
            dm.close()
            dm.unlink()

    def test_disconnected_graph_rows(self):
        from repro.graphs import from_edge_list, unit_weights

        g = unit_weights(from_edge_list(6, [(0, 1, 1.0), (2, 3, 1.0)]))
        sp = PreprocessedSSSP(g, k=1, rho=1, heuristic="full")
        with solve_many_shm(sp, [0, 2]) as dm:
            assert dm.dist[0, 1] == 1.0
            assert np.isinf(dm.dist[0, 2:]).all()
            assert dm.dist[1, 3] == 1.0
            assert np.isinf(dm.dist[1, 0:2]).all()
