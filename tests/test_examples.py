"""Smoke tests: every example runs end to end at a reduced size.

Each example's ``main()`` takes size parameters precisely so the suite
can execute the real code path (not a mock) in seconds.  Output goes to
stdout; correctness inside the examples is enforced by their own asserts
(e.g. road_routing asserts routing tables match Dijkstra exactly).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_quickstart(capsys):
    load_example("quickstart").main(side=12, rho=10)
    out = capsys.readouterr().out
    assert "distances match Dijkstra" in out
    assert "radius-stepping:" in out


def test_road_routing(capsys):
    load_example("road_routing").main(n=250, depots=3, rho=12)
    out = capsys.readouterr().out
    assert "mean step reduction" in out


def test_web_frontier(capsys):
    load_example("web_frontier").main(n=220, attach=3, rhos=(4, 8, 16))
    out = capsys.readouterr().out
    assert "BFS baseline" in out
    assert "greedy/dp" in out


def test_pram_cost_model(capsys):
    load_example("pram_cost_model").main(side=10, rhos=(1, 4, 16))
    out = capsys.readouterr().out
    assert "simulated speedup" in out
    assert "Theorem 1.1 measured" in out


def test_parallel_preprocessing(capsys):
    load_example("parallel_preprocessing").main(n=200, rho=8)
    out = capsys.readouterr().out
    assert "bit-identical" in out


def test_routing_service(capsys):
    load_example("routing_service").main(n=300, rho=10)
    out = capsys.readouterr().out
    assert "warm start from artifact" in out
    assert "cache hits" in out
    assert "bit-identical to the pickle path" in out


def test_sharded_service(capsys):
    load_example("sharded_service").main(n=300, n_shards=3, rho=10)
    out = capsys.readouterr().out
    assert "bit-identical to unsharded" in out
    assert "cross-shard route" in out
    assert "warm start from bundle" in out


def test_remote_shard_cluster(capsys):
    load_example("remote_shard_cluster").main(n=300, n_shards=3, rho=10)
    out = capsys.readouterr().out
    assert "bit-identical to in-process" in out
    assert "503 ShardUnavailable" in out
    assert "degraded, not down" in out


def test_reordering(capsys):
    load_example("reordering").main(n=250, rho=10)
    out = capsys.readouterr().out
    assert "bit-identical to the unreordered service" in out
    assert "warm start keeps the layout" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "road_routing",
        "web_frontier",
        "pram_cost_model",
        "parallel_preprocessing",
        "routing_service",
        "sharded_service",
        "remote_shard_cluster",
        "reordering",
    ],
)
def test_examples_have_docstrings_and_main(name):
    mod = load_example(name)
    assert mod.__doc__ and len(mod.__doc__) > 100
    assert callable(mod.main)
