"""Smoke tests for examples outside the five-pipeline set: the Table-1
tradeoff sweep (landmark baseline surface), the engine-plugin demo
(the repro.engine extension surface), and the HTTP serving walkthrough
(the repro.serve.http network surface)."""

import numpy as np

from tests.test_examples import load_example


def test_engine_plugins(capsys):
    mod = load_example("engine_plugins")
    mod.main(n=150, rho=8)
    out = capsys.readouterr().out
    assert "match Dijkstra" in out
    assert "engine=geometric" in out
    assert "engine=bucket" in out
    # the example registers a real, reusable engine
    from repro.engine import solve_with_engine
    from repro.graphs.generators import grid_2d

    g = grid_2d(5, 5)
    res = solve_with_engine("geometric", g, 0, None)
    assert res.algorithm == "geometric-stepping"
    assert np.allclose(res.dist.max(), 8.0)


def test_http_routing_service(capsys):
    mod = load_example("http_routing_service")
    mod.main(n=250, rho=10, threads=4)
    out = capsys.readouterr().out
    assert "HTTP server listening" in out
    assert "concurrent clients: zero errors" in out
    assert "error contract" in out
    assert "graceful shutdown" in out
    assert mod.__doc__ and callable(mod.main)


def test_baseline_tradeoffs(capsys):
    load_example("baseline_tradeoffs").main(
        n=200, t_sweep=(3, 6), rho_sweep=(6, 12)
    )
    out = capsys.readouterr().out
    assert "landmark SSSP" in out
    assert "radius-stepping" in out
    assert "Table 1" in out
