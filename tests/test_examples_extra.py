"""Smoke test for the Table-1 tradeoff example (separate module: it
imports the landmark baseline, exercising a different API surface than
the five pipeline examples)."""

from tests.test_examples import load_example


def test_baseline_tradeoffs(capsys):
    load_example("baseline_tradeoffs").main(
        n=200, t_sweep=(3, 6), rho_sweep=(6, 12)
    )
    out = capsys.readouterr().out
    assert "landmark SSSP" in out
    assert "radius-stepping" in out
    assert "Table 1" in out
