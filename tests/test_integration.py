"""Cross-module integration tests: the full paper pipeline end to end.

Each test exercises: generate graph → weight it → preprocess into a
(k,ρ)-graph → solve with both Radius-Stepping engines → validate against
Dijkstra and both theorem bounds.  This is the contract a downstream user
relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    build_kr_graph,
    dijkstra,
    max_steps_bound,
    max_substeps_bound,
    radius_stepping,
    radius_stepping_bst,
)
from repro.core import (
    PreprocessedSSSP,
    bellman_ford,
    bfs,
    delta_stepping,
    landmark_sssp,
    radius_stepping_unweighted,
)
from repro.graphs import generators, random_integer_weights, unit_weights

from tests.helpers import random_connected_graph


def _family(name, seed):
    if name == "grid2d":
        return generators.grid_2d(9, 9)
    if name == "grid3d":
        return generators.grid_3d(4, 4, 4)
    if name == "scale_free":
        return generators.scale_free(90, 2, seed=seed)
    if name == "road":
        return generators.road_network(90, seed=seed)[0]
    if name == "erdos":
        return generators.erdos_renyi(80, 160, seed=seed)
    raise AssertionError(name)


FAMILIES = ("grid2d", "grid3d", "scale_free", "road", "erdos")


class TestFullPipelineAllFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("weighted", [False, True])
    def test_preprocess_then_solve(self, family, weighted):
        g = _family(family, seed=7)
        g = random_integer_weights(g, seed=1) if weighted else unit_weights(g)
        k, rho = 2, 8
        pre = build_kr_graph(g, k, rho, heuristic="dp")
        ref = dijkstra(g, 0)
        res = radius_stepping(pre.graph, 0, pre.radii)
        assert np.allclose(res.dist, ref.dist)
        assert res.max_substeps <= max_substeps_bound(k)
        assert res.steps <= max_steps_bound(pre.graph.n, rho, pre.graph.max_weight)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_all_solvers_agree(self, family):
        g = random_integer_weights(_family(family, seed=3), seed=5)
        ref = dijkstra(g, 1).dist
        assert np.allclose(bellman_ford(g, 1).dist, ref)
        assert np.allclose(delta_stepping(g, 1, 2000.0).dist, ref)
        assert np.allclose(radius_stepping(g, 1, 100.0).dist, ref)
        assert np.allclose(radius_stepping_bst(g, 1, 100.0).dist, ref)
        assert np.allclose(landmark_sssp(g, 1, t=6, seed=0).dist, ref)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_bfs_is_unweighted_sssp(self, family):
        g = unit_weights(_family(family, seed=11))
        assert np.allclose(bfs(g, 0).dist, dijkstra(g, 0).dist)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_unweighted_engine_full_pipeline(self, family):
        """§3.4 engine through PreprocessedSSSP on every family."""
        g = unit_weights(_family(family, seed=13))
        sp = PreprocessedSSSP(g, k=2, rho=6, heuristic="dp")
        ref = dijkstra(g, 0).dist
        if sp.graph.is_unweighted:
            res = sp.solve(0, engine="unweighted")
        else:  # shortcuts added weighted arcs; auto engine falls back
            res = sp.solve(0)
        assert np.allclose(res.dist, ref)


class TestMultiSourceConsistency:
    def test_steps_shrink_with_rho(self):
        """The headline empirical claim: steps ≈ c/ρ."""
        from repro.preprocess import compute_radii_sweep

        g = random_integer_weights(generators.grid_2d(14, 14), seed=2)
        sweep = compute_radii_sweep(g, [1, 4, 16, 49])
        means = []
        for rho in (1, 4, 16, 49):
            steps = [
                radius_stepping(g, s, sweep[rho]).steps for s in (0, 50, 120)
            ]
            means.append(np.mean(steps))
        assert means[0] > means[1] > means[2] > means[3]
        # strongly sublinear: rho=16 cuts steps by far more than 4x
        assert means[0] / means[2] > 10


class TestPublicApi:
    def test_quickstart_snippet(self):
        """The exact snippet from repro.__doc__ must work."""
        from repro import generators as gens

        g = random_integer_weights(gens.grid_2d(10, 10), seed=0)
        pre = build_kr_graph(g, k=2, rho=8, heuristic="dp")
        res = radius_stepping(pre.graph, 0, pre.radii)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


@given(
    n=st.integers(8, 30),
    seed=st.integers(0, 10**6),
    k=st.integers(1, 3),
    rho=st.integers(1, 10),
    heuristic=st.sampled_from(["full", "greedy", "dp"]),
)
@settings(max_examples=25, deadline=None)
def test_pipeline_property(n, seed, k, rho, heuristic):
    """Random (family, k, ρ, heuristic): exactness + both bounds, always."""
    g = random_connected_graph(n, 2 * n, seed=seed, weight_high=12)
    pre = build_kr_graph(g, k, rho, heuristic=heuristic)
    res = radius_stepping(pre.graph, seed % n, pre.radii)
    assert np.allclose(res.dist, dijkstra(g, seed % n).dist)
    k_eff = 1 if heuristic == "full" else k
    assert res.max_substeps <= max_substeps_bound(k_eff)
    assert res.steps <= max_steps_bound(pre.graph.n, rho, pre.graph.max_weight)
