"""Differential validation against SciPy's independent SSSP implementation.

Every in-repo cross-check (engine vs engine, solver vs Dijkstra) shares
this library's CSR kernel and conventions; a shared misconception would
slip through all of them.  `scipy.sparse.csgraph` is a fully independent
implementation, so agreement here rules out that failure class for the
graph builders, the weight models, and every solver at once.
"""

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

from repro import PreprocessedSSSP, build_kr_graph, dijkstra, radius_stepping
from repro.core import bellman_ford, delta_stepping, landmark_sssp
from repro.graphs import generators, random_integer_weights, unit_weights

from tests.helpers import random_connected_graph


def to_scipy(graph):
    return csr_matrix(
        (graph.weights, graph.indices, graph.indptr), shape=(graph.n, graph.n)
    )


def scipy_dist(graph, source):
    return scipy_dijkstra(to_scipy(graph), directed=False, indices=source)


FAMILY_BUILDERS = {
    "grid2d": lambda: generators.grid_2d(11, 13),
    "grid3d": lambda: generators.grid_3d(5, 4, 6),
    "scale_free": lambda: generators.scale_free(150, 3, seed=2),
    "road": lambda: generators.road_network(150, seed=2)[0],
    "figure2": lambda: generators.figure2_graph(5),
}


class TestAgainstScipy:
    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_dijkstra_matches(self, family):
        g = random_integer_weights(FAMILY_BUILDERS[family](), seed=4)
        for s in (0, g.n // 2):
            assert np.allclose(dijkstra(g, s).dist, scipy_dist(g, s))

    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_radius_stepping_pipeline_matches(self, family):
        g = random_integer_weights(FAMILY_BUILDERS[family](), seed=5)
        pre = build_kr_graph(g, k=2, rho=8, heuristic="dp")
        res = radius_stepping(pre.graph, 0, pre.radii)
        assert np.allclose(res.dist, scipy_dist(g, 0))

    def test_all_baselines_match(self):
        g = random_connected_graph(80, 200, seed=6, weight_high=99)
        ref = scipy_dist(g, 3)
        assert np.allclose(bellman_ford(g, 3).dist, ref)
        assert np.allclose(delta_stepping(g, 3, 25.0).dist, ref)
        assert np.allclose(landmark_sssp(g, 3, t=7, seed=1).dist, ref)

    def test_facade_matches(self):
        g = random_connected_graph(70, 160, seed=7)
        sp = PreprocessedSSSP(g, k=2, rho=10)
        assert np.allclose(sp.distances(9), scipy_dist(g, 9))

    def test_unweighted_matches(self):
        g = unit_weights(generators.scale_free(120, 2, seed=8))
        assert np.allclose(dijkstra(g, 0).dist, scipy_dist(g, 0))

    def test_disconnected_inf_convention_matches(self):
        from repro.graphs import from_edge_list

        g = from_edge_list(6, [(0, 1, 2.0), (2, 3, 1.0), (4, 5, 7.0)])
        ours = dijkstra(g, 0).dist
        theirs = scipy_dist(g, 0)
        assert np.array_equal(np.isinf(ours), np.isinf(theirs))
        assert np.allclose(ours[np.isfinite(ours)], theirs[np.isfinite(theirs)])
